package flight

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"hdnh/internal/obs"
)

func TestRingRecordAndSnapshot(t *testing.T) {
	r := New(Config{RingEvents: 64, SlowOpThreshold: -1})
	tr := r.Handle("session")

	begin := tr.OpBegin(obs.OpGet)
	if begin == 0 {
		t.Fatal("OpBegin returned 0 for a sampled op")
	}
	tr.Probe(7, 2, 3)
	tr.OpEnd(obs.OpGet, obs.OutNVTHit, begin)
	tr.HotFill(true)
	tr.HotEvict()
	tr.DrainChunk(128, 40, 5*time.Microsecond)
	tr.ResizeSwap(3, time.Microsecond)
	tr.ResizeDone(4, time.Millisecond)
	tr.GCPhase(GCRewrite, 9, 2*time.Microsecond, 11)
	tr.VLogSeg(2, 5)
	tr.RecoveryStep(RecOCF, 3*time.Microsecond, 1000)
	tr.GroupCommit(64, 2, 4*time.Microsecond)

	d := r.Snapshot()
	if len(d.Rings) != 1 || d.Rings[0].Label != "session" {
		t.Fatalf("rings = %+v", d.Rings)
	}
	want := []Kind{
		KindOpBegin, KindProbe, KindRescan, KindLockSpin, KindOpEnd,
		KindHotFill, KindHotEvict, KindDrainChunk, KindResizeSwap,
		KindResizeDone, KindGCPhase, KindVLogSeg, KindRecoveryStep,
		KindGroupCommit,
	}
	if len(d.Events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(d.Events), len(want), d.Events)
	}
	for i, k := range want {
		if d.Events[i].Kind != k {
			t.Fatalf("event %d kind = %v, want %v", i, d.Events[i].Kind, k)
		}
	}
	end := d.Events[4]
	if obs.Op(end.A) != obs.OpGet || obs.Outcome(end.B) != obs.OutNVTHit {
		t.Fatalf("op-end decoded as %v/%v", obs.Op(end.A), obs.Outcome(end.B))
	}
	if end.Args[0] == 0 {
		t.Fatal("op-end carries no duration")
	}
	gc := d.Events[10]
	if GCPhase(gc.A) != GCRewrite || gc.Args[1] != 9 || gc.Args[2] != 11 {
		t.Fatalf("gc-phase decoded as %+v", gc)
	}
	grp := d.Events[13]
	if grp.Args[1] != 64 || grp.Args[2] != 2 || grp.Args[0] == 0 {
		t.Fatalf("group-commit decoded as %+v", grp)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := New(Config{RingEvents: 16, SlowOpThreshold: -1})
	tr := r.Handle("w")
	for i := 0; i < 100; i++ {
		tr.VLogSeg(1, int64(i))
	}
	d := r.Snapshot()
	if len(d.Events) != 16 {
		t.Fatalf("got %d events after wrap, want 16", len(d.Events))
	}
	for i, ev := range d.Events {
		if want := uint64(100 - 16 + i); ev.Args[0] != want {
			t.Fatalf("event %d segment = %d, want %d", i, ev.Args[0], want)
		}
	}
}

func TestSampling(t *testing.T) {
	r := New(Config{RingEvents: 256, SampleEvery: 8, SlowOpThreshold: -1})
	tr := r.Handle("s")
	for i := 0; i < 64; i++ {
		b := tr.OpBegin(obs.OpInsert)
		tr.Probe(1, 1, 1) // must be dropped outside sampled ops
		tr.OpEnd(obs.OpInsert, obs.OutOK, b)
	}
	d := r.Snapshot()
	var begins, ends, probes int
	for _, ev := range d.Events {
		switch ev.Kind {
		case KindOpBegin:
			begins++
		case KindOpEnd:
			ends++
		case KindProbe:
			probes++
		}
	}
	if begins != 8 || ends != 8 {
		t.Fatalf("sampled %d begins / %d ends, want 8/8", begins, ends)
	}
	if probes != 8 {
		t.Fatalf("probe events = %d, want 8 (only inside sampled ops)", probes)
	}
}

func TestSlowOpCapturePromotesWindow(t *testing.T) {
	r := New(Config{RingEvents: 64, SlowOpThreshold: 1, SlowOpKeep: 4})
	tr := r.Handle("s")
	// Background noise before the op must stay out of the window.
	tr.VLogSeg(1, 99)
	b := tr.OpBegin(obs.OpGet)
	tr.Probe(5, 2, 0)
	time.Sleep(50 * time.Microsecond) // guarantee dur >= 1ns threshold
	tr.OpEnd(obs.OpGet, obs.OutMiss, b)

	slow := r.SlowOps()
	if len(slow) != 1 {
		t.Fatalf("retained %d slow ops, want 1", len(slow))
	}
	so := slow[0]
	if so.Op != obs.OpGet || so.Out != obs.OutMiss || so.Dur <= 0 {
		t.Fatalf("slow op = %+v", so)
	}
	kinds := map[Kind]int{}
	for _, ev := range so.Events {
		kinds[ev.Kind]++
		if ev.Kind == KindVLogSeg {
			t.Fatal("pre-op event leaked into the slow-op window")
		}
	}
	if kinds[KindOpBegin] != 1 || kinds[KindProbe] != 1 || kinds[KindRescan] != 1 || kinds[KindOpEnd] != 1 {
		t.Fatalf("window kinds = %v", kinds)
	}

	// The buffer is bounded: overflow drops the oldest.
	for i := 0; i < 10; i++ {
		b := tr.OpBegin(obs.OpDelete)
		tr.OpEnd(obs.OpDelete, obs.OutOK, b)
	}
	slow = r.SlowOps()
	if len(slow) != 4 {
		t.Fatalf("retained %d slow ops, want cap 4", len(slow))
	}
	for _, so := range slow {
		if so.Op != obs.OpDelete {
			t.Fatalf("oldest entries not dropped: %+v", so)
		}
	}
	if r.SlowOpsSeen() != 11 {
		t.Fatalf("SlowOpsSeen = %d, want 11", r.SlowOpsSeen())
	}
}

func TestNilRecorderIsNop(t *testing.T) {
	var r *Recorder
	tr := r.Handle("x")
	if _, ok := tr.(Nop); !ok {
		t.Fatalf("nil recorder handle = %T, want Nop", tr)
	}
	if b := tr.OpBegin(obs.OpGet); b != 0 {
		t.Fatalf("Nop OpBegin = %d", b)
	}
	if d := r.Snapshot(); len(d.Events) != 0 || len(d.Rings) != 0 {
		t.Fatalf("nil recorder snapshot = %+v", d)
	}
	if r.SlowOps() != nil || r.SlowOpsSeen() != 0 {
		t.Fatal("nil recorder retained slow ops")
	}
}

// TestConcurrentEmitAndSnapshot hammers one shared ring from several writers
// while a reader snapshots continuously: under -race this pins the seqlock
// protocol, and the assertions pin that accepted events are never torn
// (every accepted event must be internally consistent).
func TestConcurrentEmitAndSnapshot(t *testing.T) {
	r := New(Config{RingEvents: 128, SlowOpThreshold: -1})
	tr := r.Handle("shared").(*Handle)

	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Args encode a checksum so a torn event is detectable.
				v := uint64(w)<<32 | uint64(i)
				tr.rg.emit(int64(v), KindVLogSeg, 1, 0, v, v^0xABCD, v+1, v^0x1234)
			}
		}(w)
	}
	var snapshots int
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			d := r.Snapshot()
			snapshots++
			for _, ev := range d.Events {
				v := ev.Args[0]
				if ev.Args[1] != v^0xABCD || ev.Args[2] != v+1 || ev.Args[3] != v^0x1234 || ev.TS != int64(v) {
					t.Errorf("torn event accepted: %+v", ev)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	d := r.Snapshot()
	if len(d.Events) != 128 {
		t.Fatalf("final snapshot has %d events, want full ring 128", len(d.Events))
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := New(Config{RingEvents: 64, SlowOpThreshold: 1})
	tr := r.Handle("session")
	bg := r.Handle("table")
	b := tr.OpBegin(obs.OpUpdate)
	tr.Probe(3, 1, 2)
	time.Sleep(10 * time.Microsecond)
	tr.OpEnd(obs.OpUpdate, obs.OutOK, b)
	bg.DrainChunk(64, 10, time.Microsecond)
	bg.GCPhase(GCRecycle, 2, time.Microsecond, 1)

	d := r.Snapshot()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rings) != len(d.Rings) || got.Rings[0] != d.Rings[0] || got.Rings[1] != d.Rings[1] {
		t.Fatalf("rings round-trip: got %+v want %+v", got.Rings, d.Rings)
	}
	if len(got.Events) != len(d.Events) {
		t.Fatalf("events round-trip: got %d want %d", len(got.Events), len(d.Events))
	}
	for i := range got.Events {
		if got.Events[i] != d.Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got.Events[i], d.Events[i])
		}
	}
	if len(got.Slow) != len(d.Slow) {
		t.Fatalf("slow round-trip: got %d want %d", len(got.Slow), len(d.Slow))
	}
	for i := range got.Slow {
		g, w := got.Slow[i], d.Slow[i]
		if g.Op != w.Op || g.Out != w.Out || g.Ring != w.Ring || g.Start != w.Start || g.Dur != w.Dur || len(g.Events) != len(w.Events) {
			t.Fatalf("slow op %d: got %+v want %+v", i, g, w)
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		bytes.Repeat([]byte{0xFF}, 64),
	}
	// A valid header followed by a hostile ring count must not allocate.
	var hostile bytes.Buffer
	WriteBinary(&hostile, Dump{})
	h := hostile.Bytes()
	h[16], h[17], h[18], h[19] = 0xFF, 0xFF, 0xFF, 0xFF
	cases = append(cases, h)

	for i, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); !errors.Is(err, ErrBadDump) {
			t.Fatalf("case %d: err = %v, want ErrBadDump", i, err)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := New(Config{RingEvents: 64, SlowOpThreshold: -1})
	tr := r.Handle("session")
	b := tr.OpBegin(obs.OpGet)
	tr.OpEnd(obs.OpGet, obs.OutHotHit, b)
	tr.GCPhase(GCCopy, 1, time.Microsecond, 5)
	tr.RecoveryStep(RecReplay, time.Microsecond, 1)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var tr2 struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr2); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range tr2.TraceEvents {
		names[ev["name"].(string)] = true
	}
	for _, want := range []string{"thread_name", "get", "gc-copy", "recovery-replay"} {
		if !names[want] {
			t.Fatalf("chrome trace missing %q (have %v)", want, names)
		}
	}
	for _, ev := range tr2.TraceEvents {
		if ev["name"] == "get" {
			args := ev["args"].(map[string]any)
			if args["outcome"] != "hot_hit" {
				t.Fatalf("get span args = %v", args)
			}
		}
	}
}

func TestWriteText(t *testing.T) {
	r := New(Config{RingEvents: 64, SlowOpThreshold: 1})
	tr := r.Handle("session")
	b := tr.OpBegin(obs.OpGet)
	tr.Probe(0, 4, 0)
	time.Sleep(10 * time.Microsecond)
	tr.OpEnd(obs.OpGet, obs.OutMiss, b)
	tr.DrainChunk(32, 8, time.Microsecond)

	var buf bytes.Buffer
	if err := WriteText(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"flight dump: 1 rings",
		"get miss",
		"movement-hazard rescans=4",
		"drain chunk: 32 buckets",
		"slow ops",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text dump missing %q:\n%s", want, out)
		}
	}
}

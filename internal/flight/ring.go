package flight

import (
	"runtime"
	"sync/atomic"
)

// Ring slot layout: 6 atomic uint64 words per event.
//
//	w0 = seq(32) | kind(8) | a(8) | b(16)   — the commit word
//	w1 = timestamp (ns since epoch)
//	w2..w5 = args
//
// seq is the low 32 bits of the slot's claim position divided by capacity
// (the "lap" counter), so a reader can tell a stale slot from a fresh one
// and detect a writer lapping it mid-read.
//
// Publication is a two-phase seqlock: the writer first stores w0 with the
// new seq and an invalid kind (kindTorn), then the payload words, then the
// final w0. A reader accepts a slot only when w0 reads identically — with a
// valid kind — before and after it copies the payload. The tombstone phase
// is what makes the re-read sufficient: without it, a reader could copy new
// payload words while w0 still holds the previous lap's value both times.
const (
	slotWords = 6
	kindTorn  = 0xFF
)

type ring struct {
	id    uint32
	label string
	mask  uint64
	_     [64]byte // keep pos off the constructor goroutine's lines
	pos   atomic.Uint64
	_     [64]byte // and off the slot array's first line
	slots []atomic.Uint64
}

func newRing(id uint32, label string, capacity int) *ring {
	return &ring{
		id:    id,
		label: label,
		mask:  uint64(capacity - 1),
		slots: make([]atomic.Uint64, capacity*slotWords),
	}
}

func packMeta(seq uint32, kind uint8, a uint8, b uint16) uint64 {
	return uint64(seq)<<32 | uint64(kind)<<24 | uint64(a)<<16 | uint64(b)
}

func unpackMeta(w0 uint64) (seq uint32, kind uint8, a uint8, b uint16) {
	return uint32(w0 >> 32), uint8(w0 >> 24), uint8(w0 >> 16), uint16(w0)
}

// emit claims the next slot and publishes one event. Safe for concurrent
// writers: the claim is a single atomic add, and the two-phase commit means
// concurrent readers skip the slot rather than observe a torn event.
//
// When the ring laps within one in-flight write (claims p and p+capacity
// alive at once), the later claimant waits for the earlier one's commit
// before touching the slot (Vyukov-style), so two writers never interleave
// payload stores into the same slot and the reader's w0 re-read check is
// sufficient. The wait only triggers under pathological contention on an
// undersized ring and is bounded by one writer's seven stores.
func (rg *ring) emit(ts int64, kind Kind, a uint8, b uint16, a0, a1, a2, a3 uint64) {
	p := rg.pos.Add(1) - 1
	lap := p / (rg.mask + 1)
	// +1 so a zeroed (never-written) slot can never match any expected seq.
	seq := uint32(lap) + 1
	base := (p & rg.mask) * slotWords
	s := rg.slots[base : base+slotWords : base+slotWords]
	for {
		sq, k, _, _ := unpackMeta(s[0].Load())
		// A zeroed slot reads as (0, committed) — the expected state for
		// lap 0 — so one check covers first use and every wrap.
		if sq == uint32(lap) && k != kindTorn {
			break
		}
		runtime.Gosched()
	}
	s[0].Store(packMeta(seq, kindTorn, 0, 0))
	s[1].Store(uint64(ts))
	s[2].Store(a0)
	s[3].Store(a1)
	s[4].Store(a2)
	s[5].Store(a3)
	s[0].Store(packMeta(seq, uint8(kind), a, b))
}

// snapshotFrom copies every committed event with claim position >= from,
// oldest first, skipping slots a writer holds torn or has lapped mid-read.
func (rg *ring) snapshotFrom(from uint64) []Event {
	end := rg.pos.Load()
	cap64 := rg.mask + 1
	start := from
	if end > cap64 && start < end-cap64 {
		start = end - cap64 // older claims have been overwritten
	}
	if start >= end {
		return nil
	}
	out := make([]Event, 0, end-start)
	for p := start; p < end; p++ {
		wantSeq := uint32(p/cap64) + 1
		base := (p & rg.mask) * slotWords
		s := rg.slots[base : base+slotWords : base+slotWords]
		w0 := s[0].Load()
		seq, kind, a, b := unpackMeta(w0)
		if seq != wantSeq || kind >= uint8(numKinds) {
			continue // torn, lapped, or not yet committed
		}
		ev := Event{
			TS:   int64(s[1].Load()),
			Ring: rg.id,
			Kind: Kind(kind),
			A:    a,
			B:    b,
		}
		ev.Args[0] = s[2].Load()
		ev.Args[1] = s[3].Load()
		ev.Args[2] = s[4].Load()
		ev.Args[3] = s[5].Load()
		if s[0].Load() != w0 {
			continue // a writer moved in while we copied
		}
		out = append(out, ev)
	}
	return out
}

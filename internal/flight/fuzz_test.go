package flight

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"hdnh/internal/obs"
)

// FuzzFlightReader pins ReadBinary's hostile-input discipline: on arbitrary
// bytes it must return a Dump or an error — never panic, never allocate
// unboundedly — and accepted dumps must re-encode and re-read to the same
// events (the reader never invents data).
func FuzzFlightReader(f *testing.F) {
	// Seed with real dumps of increasing richness, plus truncations and
	// single-byte corruptions of a valid dump.
	r := New(Config{RingEvents: 32, SlowOpThreshold: 1})
	tr := r.Handle("session")
	b := tr.OpBegin(obs.OpGet)
	tr.Probe(3, 1, 2)
	time.Sleep(5 * time.Microsecond)
	tr.OpEnd(obs.OpGet, obs.OutMiss, b)
	tr.GCPhase(GCPersist, 4, time.Microsecond, 7)
	tr.RecoveryStep(RecHot, time.Microsecond, 3)

	var valid bytes.Buffer
	if err := WriteBinary(&valid, r.Snapshot()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	var empty bytes.Buffer
	WriteBinary(&empty, Dump{})
	f.Add(empty.Bytes())
	for _, cut := range []int{1, 15, 16, 20, len(valid.Bytes()) - 7} {
		if cut > 0 && cut < valid.Len() {
			f.Add(valid.Bytes()[:cut])
		}
	}
	for _, flip := range []int{0, 8, 16, 21, 40} {
		if flip < valid.Len() {
			mut := bytes.Clone(valid.Bytes())
			mut[flip] ^= 0x80
			f.Add(mut)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadDump) {
				t.Fatalf("non-ErrBadDump error: %v", err)
			}
			return
		}
		// Anything accepted must survive a write/read round trip intact.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, d); err != nil {
			t.Fatalf("re-encoding accepted dump: %v", err)
		}
		d2, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading re-encoded dump: %v", err)
		}
		if len(d2.Rings) != len(d.Rings) || len(d2.Events) != len(d.Events) || len(d2.Slow) != len(d.Slow) {
			t.Fatalf("round trip changed shape: %d/%d/%d -> %d/%d/%d",
				len(d.Rings), len(d.Events), len(d.Slow),
				len(d2.Rings), len(d2.Events), len(d2.Slow))
		}
		for i := range d.Events {
			if d.Events[i] != d2.Events[i] {
				t.Fatalf("round trip changed event %d", i)
			}
		}
	})
}

// Package scheme defines the common interface every hashing scheme in this
// repository implements — HDNH and the three baselines (LEVEL, CCEH, PATH) —
// so the benchmark harness can sweep schemes uniformly, exactly as the
// paper's evaluation does.
package scheme

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hdnh/internal/kv"
	"hdnh/internal/nvm"
)

// Sentinel errors shared by all schemes.
var (
	// ErrFull means the scheme could not place the key even after any
	// resizing it supports (PATH is static and returns this first).
	ErrFull = errors.New("scheme: table full")
	// ErrNotFound means an update or delete targeted an absent key.
	ErrNotFound = errors.New("scheme: key not found")
	// ErrExists means an insert targeted a key that is already present.
	ErrExists = errors.New("scheme: key already exists")
	// ErrContended means the operation exhausted its optimistic retry budget
	// under sustained concurrent record movement and gave up without a
	// conclusive answer. It is distinct from ErrNotFound on purpose: the key
	// may well exist. Callers should back off and retry.
	ErrContended = errors.New("scheme: operation contended, retry")
	// ErrConflict means a conditional update found the key bound to a value
	// other than the expected one and changed nothing. The caller saw a
	// stale value; re-read and decide again.
	ErrConflict = errors.New("scheme: value changed, conditional update aborted")
)

// Store is a persistent hash table bound to an NVM device.
type Store interface {
	// Name returns the scheme's short name (e.g. "HDNH", "CCEH").
	Name() string
	// NewSession returns a per-goroutine handle. Sessions are not safe for
	// concurrent use; the Store itself is, through concurrent sessions.
	NewSession() Session
	// Count returns the number of live records.
	Count() int64
	// Capacity returns the total slot count of the current structure.
	Capacity() int64
	// LoadFactor returns live records divided by total slot capacity.
	LoadFactor() float64
	// Close releases background resources (e.g. HDNH's writer pool).
	Close() error
}

// Session is the per-worker operation interface.
type Session interface {
	// Insert adds a new record. Returns ErrExists or ErrFull.
	Insert(k kv.Key, v kv.Value) error
	// Get returns the value for k, with found=false when absent.
	Get(k kv.Key) (kv.Value, bool)
	// Update replaces the value of an existing record. Returns ErrNotFound
	// (or ErrFull for schemes that update out-of-place and ran out of room).
	Update(k kv.Key, v kv.Value) error
	// Delete removes a record. Returns ErrNotFound when absent.
	Delete(k kv.Key) error
	// NVMStats returns the NVM traffic generated through this session.
	NVMStats() nvm.Stats
	// Close releases per-session resources held in the Store (HDNH returns
	// the session's epoch slot for reuse, bounding the epoch registry under
	// session churn; the baselines hold none and no-op). Callers that
	// create sessions per worker or per request must close them.
	Close() error
}

// BatchSession is the optional batched extension of Session. Schemes that
// can amortise per-operation overhead across a batch (HDNH hashes all keys
// up front, chunks its epoch critical sections and groups its hot-cache
// fills) implement it; callers that hold only a Session use the package
// helpers MultiGet/MultiPut/MultiDelete, which type-assert and fall back to
// per-key loops so every scheme benchmarks under the same driver.
type BatchSession interface {
	Session
	// MultiGet looks up all keys, writing vals[i]/found[i] per key and
	// returning how many were found. vals and found must be len(keys).
	MultiGet(keys []kv.Key, vals []kv.Value, found []bool) int
	// MultiPut upserts all keys (update-else-insert), writing a per-key
	// verdict into errs and returning the number of failures.
	MultiPut(keys []kv.Key, vals []kv.Value, errs []error) int
	// MultiDelete removes all keys, writing a per-key verdict into errs
	// (ErrNotFound for absent keys) and returning the number of failures.
	MultiDelete(keys []kv.Key, errs []error) int
}

// MultiGet batch-reads through s, using the scheme's native batch path when
// it has one and a per-key fallback otherwise.
func MultiGet(s Session, keys []kv.Key, vals []kv.Value, found []bool) int {
	if bs, ok := s.(BatchSession); ok {
		return bs.MultiGet(keys, vals, found)
	}
	hits := 0
	for i := range keys {
		vals[i], found[i] = s.Get(keys[i])
		if found[i] {
			hits++
		}
	}
	return hits
}

// MultiPut batch-upserts through s, falling back to per-key
// update-else-insert for schemes without a native batch path.
func MultiPut(s Session, keys []kv.Key, vals []kv.Value, errs []error) int {
	if bs, ok := s.(BatchSession); ok {
		return bs.MultiPut(keys, vals, errs)
	}
	fails := 0
	for i := range keys {
		errs[i] = putFallback(s, keys[i], vals[i])
		if errs[i] != nil {
			fails++
		}
	}
	return fails
}

func putFallback(s Session, k kv.Key, v kv.Value) error {
	for {
		err := s.Update(k, v)
		if !errors.Is(err, ErrNotFound) {
			return err
		}
		err = s.Insert(k, v)
		if !errors.Is(err, ErrExists) {
			return err
		}
	}
}

// MultiDelete batch-deletes through s, falling back to per-key Delete for
// schemes without a native batch path.
func MultiDelete(s Session, keys []kv.Key, errs []error) int {
	if bs, ok := s.(BatchSession); ok {
		return bs.MultiDelete(keys, errs)
	}
	fails := 0
	for i := range keys {
		errs[i] = s.Delete(keys[i])
		if errs[i] != nil {
			fails++
		}
	}
	return fails
}

// Factory builds a Store on the given device. capacityHint is the number of
// records the caller plans to load; schemes size their initial structures
// from it (static PATH sizes its whole table from it).
type Factory func(dev *nvm.Device, capacityHint int64) (Store, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a named factory. Duplicate registration panics (it is a
// programming error in package init).
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scheme: duplicate registration of %q", name))
	}
	registry[name] = f
}

// Open instantiates the named scheme.
func Open(name string, dev *nvm.Device, capacityHint int64) (Store, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("scheme: unknown scheme %q (registered: %v)", name, Names())
	}
	return f(dev, capacityHint)
}

// Names lists registered schemes, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

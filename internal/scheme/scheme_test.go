package scheme

import (
	"errors"
	"strings"
	"testing"

	"hdnh/internal/kv"
	"hdnh/internal/nvm"
)

type fakeStore struct{ name string }

func (f *fakeStore) Name() string        { return f.name }
func (f *fakeStore) NewSession() Session { return nil }
func (f *fakeStore) Count() int64        { return 0 }
func (f *fakeStore) Capacity() int64     { return 0 }
func (f *fakeStore) LoadFactor() float64 { return 0 }
func (f *fakeStore) Close() error        { return nil }

func TestRegisterAndOpen(t *testing.T) {
	Register("test-fake", func(dev *nvm.Device, hint int64) (Store, error) {
		return &fakeStore{name: "test-fake"}, nil
	})
	dev, err := nvm.New(nvm.DefaultConfig(1024))
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open("test-fake", dev, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name() != "test-fake" {
		t.Fatalf("Name = %q", st.Name())
	}
	found := false
	for _, n := range Names() {
		if n == "test-fake" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v missing test-fake", Names())
	}
}

func TestOpenUnknown(t *testing.T) {
	dev, err := nvm.New(nvm.DefaultConfig(1024))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Open("definitely-not-registered", dev, 10)
	if err == nil {
		t.Fatal("unknown scheme opened")
	}
	if !strings.Contains(err.Error(), "unknown scheme") {
		t.Fatalf("error %q lacks context", err)
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	Register("test-dup", func(dev *nvm.Device, hint int64) (Store, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("test-dup", func(dev *nvm.Device, hint int64) (Store, error) { return nil, nil })
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestSentinelErrorsDistinct(t *testing.T) {
	errs := []error{ErrFull, ErrNotFound, ErrExists}
	for i, a := range errs {
		for j, b := range errs {
			if i != j && errors.Is(a, b) {
				t.Fatalf("sentinels %d and %d alias", i, j)
			}
		}
	}
	var _ kv.Key // keep kv import for the interface types
}

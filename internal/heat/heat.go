// Package heat attributes load to keys: a sampled Space-Saving top-K sketch
// per shard that answers "which keys are hot, and on which shard" without
// touching the unsampled fast path.
//
// The wiring mirrors the two-layer devirtualization pattern used by
// internal/obs and internal/flight:
//
//   - Monitor is the process-wide owner: one Shard sketch per router shard,
//     snapshotted by /debug/heat.
//   - Sampler is the per-session hook compiled into the core op paths. When
//     heat is disabled the session holds the zero-size Nop and every Touch
//     devirtualizes to an empty body; when enabled it holds a *Handle whose
//     unsampled path is one counter increment and a modulo — no locks, no
//     allocations, no shared-cache-line traffic.
//
// Only 1-in-SampleEvery touches reach the sketch, so the per-shard mutex and
// the O(TopK) min-scan eviction are paid at 1/64th of op rate by default.
// Counts reported by Snapshot are scaled back up by SampleEvery, making them
// estimates of true op counts; each entry carries the standard Space-Saving
// overestimate bound (the displaced minimum at takeover time, scaled the
// same way).
package heat

import (
	"sort"
	"sync"

	"hdnh/internal/kv"
	"hdnh/internal/obs"
)

// Defaults. SampleEvery matches obs.Config.SampleEvery's default so the two
// sampling knobs behave consistently.
const (
	DefaultTopK        = 32
	DefaultSampleEvery = 64
)

// Config sizes the sketch.
type Config struct {
	// TopK is the number of tracked keys per shard. 0 means DefaultTopK.
	TopK int
	// SampleEvery sends every Nth touch per session to the sketch.
	// 0 means DefaultSampleEvery; 1 records every op.
	SampleEvery int
}

func (c Config) withDefaults() Config {
	if c.TopK <= 0 {
		c.TopK = DefaultTopK
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = DefaultSampleEvery
	}
	return c
}

// Sampler is the per-session heat hook. Implementations: Nop (disabled,
// empty bodies) and *Handle (enabled, sampled).
type Sampler interface {
	// Touch records one op against k. Implementations must be allocation-free
	// on the unsampled path.
	Touch(op obs.Op, k kv.Key)
}

// Nop is the disabled Sampler. All methods are empty so the compiler can
// devirtualize and inline them away.
type Nop struct{}

// Touch does nothing.
func (Nop) Touch(obs.Op, kv.Key) {}

// Monitor owns the per-shard sketches. Safe for concurrent use.
type Monitor struct {
	cfg Config

	mu     sync.RWMutex
	shards []*Shard
}

// NewMonitor builds a Monitor; shard sketches are created on first use.
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{cfg: cfg.withDefaults()}
}

// Config reports the effective (defaulted) configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Shard returns the sketch for shard i, creating it if needed. A nil Monitor
// returns nil, which Handle treats as disabled.
func (m *Monitor) Shard(i int) *Shard {
	if m == nil || i < 0 {
		return nil
	}
	m.mu.RLock()
	if i < len(m.shards) {
		sh := m.shards[i]
		m.mu.RUnlock()
		return sh
	}
	m.mu.RUnlock()

	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.shards) <= i {
		m.shards = append(m.shards, newShard(len(m.shards), m.cfg))
	}
	return m.shards[i]
}

// Handle returns a per-session Sampler feeding shard i. Each session must
// get its own Handle: the sampling counter is unsynchronized by design.
func (m *Monitor) Handle(shard int) Sampler {
	sh := m.Shard(shard)
	if sh == nil {
		return Nop{}
	}
	return &Handle{sh: sh, every: uint32(m.cfg.SampleEvery)}
}

// Handle is the enabled per-session Sampler. Not safe for concurrent use —
// one per session, like obs.Metrics handles.
type Handle struct {
	sh    *Shard
	n     uint32
	every uint32
}

// Touch counts the op and, on every Nth call, records it in the shard
// sketch with weight N.
func (h *Handle) Touch(op obs.Op, k kv.Key) {
	h.n++
	if h.n%h.every != 0 {
		return
	}
	h.sh.touch(op, k)
}

// Shard is one shard's sketch: a Space-Saving stream summary of TopK keys
// plus sampled per-op counters, all under one mutex that only sampled
// touches take.
type Shard struct {
	id     int
	weight uint64 // count each sampled touch represents

	mu      sync.Mutex
	entries []entry
	index   map[kv.Key]int // key -> entries slot
	ops     [obs.NumOps]uint64
}

type entry struct {
	key kv.Key
	cnt uint64 // estimated count (sampled, unscaled)
	err uint64 // overestimate bound (unscaled)
}

func newShard(id int, cfg Config) *Shard {
	return &Shard{
		id:      id,
		weight:  uint64(cfg.SampleEvery),
		entries: make([]entry, 0, cfg.TopK),
		index:   make(map[kv.Key]int, cfg.TopK),
	}
}

// touch is the sampled-path sketch update: increment if tracked, insert if
// there is room, otherwise take over the minimum-count entry (classic
// Space-Saving). O(TopK) min scan — TopK is small and this runs at
// 1/SampleEvery of op rate.
func (s *Shard) touch(op obs.Op, k kv.Key) {
	s.mu.Lock()
	if op >= 0 && int(op) < len(s.ops) {
		s.ops[op]++
	}
	if i, ok := s.index[k]; ok {
		s.entries[i].cnt++
		s.mu.Unlock()
		return
	}
	if len(s.entries) < cap(s.entries) {
		s.index[k] = len(s.entries)
		s.entries = append(s.entries, entry{key: k, cnt: 1})
		s.mu.Unlock()
		return
	}
	min := 0
	for i := 1; i < len(s.entries); i++ {
		if s.entries[i].cnt < s.entries[min].cnt {
			min = i
		}
	}
	e := &s.entries[min]
	delete(s.index, e.key)
	s.index[k] = min
	e.err = e.cnt
	e.key = k
	e.cnt++
	s.mu.Unlock()
}

// KeyCount is one reported hot key. Count and Err are scaled by SampleEvery,
// so Count estimates the true op count and the true count is guaranteed to
// be ≤ Count and ≥ Count-Err up to sampling error.
type KeyCount struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err"`
}

// ShardSnapshot is one shard's view: estimated per-op counts plus the top-K
// keys in descending estimated count.
type ShardSnapshot struct {
	Shard int               `json:"shard"`
	Ops   map[string]uint64 `json:"ops"`
	Total uint64            `json:"total"`
	Top   []KeyCount        `json:"top"`
}

// Snapshot is the full /debug/heat payload.
type Snapshot struct {
	SampleEvery int             `json:"sample_every"`
	TopK        int             `json:"top_k"`
	Shards      []ShardSnapshot `json:"shards"`
}

// Snapshot copies out every shard's state. A nil Monitor reports an empty
// snapshot so callers need no enabled/disabled branch.
func (m *Monitor) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	m.mu.RLock()
	shards := make([]*Shard, len(m.shards))
	copy(shards, m.shards)
	m.mu.RUnlock()

	out := Snapshot{
		SampleEvery: m.cfg.SampleEvery,
		TopK:        m.cfg.TopK,
		Shards:      make([]ShardSnapshot, 0, len(shards)),
	}
	for _, sh := range shards {
		out.Shards = append(out.Shards, sh.snapshot())
	}
	return out
}

func (s *Shard) snapshot() ShardSnapshot {
	ss := ShardSnapshot{Shard: s.id, Ops: make(map[string]uint64, obs.NumOps)}
	s.mu.Lock()
	top := make([]KeyCount, 0, len(s.entries))
	for _, e := range s.entries {
		top = append(top, KeyCount{
			Key:   e.key.String(),
			Count: e.cnt * s.weight,
			Err:   e.err * s.weight,
		})
	}
	for op := obs.Op(0); op < obs.NumOps; op++ {
		if n := s.ops[op]; n > 0 {
			ss.Ops[op.String()] = n * s.weight
			ss.Total += n * s.weight
		}
	}
	s.mu.Unlock()
	sort.Slice(top, func(a, b int) bool { return top[a].Count > top[b].Count })
	ss.Top = top
	return ss
}

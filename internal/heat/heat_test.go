package heat

import (
	"fmt"
	"sync"
	"testing"

	"hdnh/internal/kv"
	"hdnh/internal/obs"
)

func key(i int) kv.Key { return kv.MustKey([]byte(fmt.Sprintf("key-%06d", i))) }

// An unsampled stream (SampleEvery=1) must count a planted heavy hitter
// exactly and rank it first.
func TestPlantedHeavyHitter(t *testing.T) {
	m := NewMonitor(Config{TopK: 8, SampleEvery: 1})
	h := m.Handle(0)
	hot := key(0)
	for i := 0; i < 1000; i++ {
		h.Touch(obs.OpGet, hot)
		h.Touch(obs.OpGet, key(1+i%4))
	}
	snap := m.Snapshot()
	if len(snap.Shards) != 1 {
		t.Fatalf("shards = %d, want 1", len(snap.Shards))
	}
	top := snap.Shards[0].Top
	if len(top) == 0 || top[0].Key != hot.String() {
		t.Fatalf("top = %+v, want %q first", top, hot.String())
	}
	if top[0].Count != 1000 || top[0].Err != 0 {
		t.Fatalf("hot count=%d err=%d, want 1000/0", top[0].Count, top[0].Err)
	}
	if got := snap.Shards[0].Ops["get"]; got != 2000 {
		t.Fatalf("get ops = %d, want 2000", got)
	}
	if snap.Shards[0].Total != 2000 {
		t.Fatalf("total = %d, want 2000", snap.Shards[0].Total)
	}
}

// With sampling enabled, reported counts are scaled estimates: a handle that
// touches one key N times with SampleEvery=E must report exactly N when E
// divides N (the sketch sees N/E touches of weight E).
func TestSampledScaling(t *testing.T) {
	m := NewMonitor(Config{TopK: 4, SampleEvery: 8})
	h := m.Handle(3)
	k := key(7)
	for i := 0; i < 8000; i++ {
		h.Touch(obs.OpUpdate, k)
	}
	snap := m.Snapshot()
	// Shards 0..3 exist; only 3 has data.
	if len(snap.Shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(snap.Shards))
	}
	sh := snap.Shards[3]
	if len(sh.Top) != 1 || sh.Top[0].Count != 8000 {
		t.Fatalf("top = %+v, want one entry count 8000", sh.Top)
	}
	if sh.Ops["update"] != 8000 || sh.Total != 8000 {
		t.Fatalf("ops = %+v total %d, want update 8000", sh.Ops, sh.Total)
	}
	if sh.Shard != 3 {
		t.Fatalf("shard id = %d, want 3", sh.Shard)
	}
}

// A stream with more distinct keys than TopK must keep the heavy hitters and
// report a non-zero overestimate bound for entries that took over a slot.
func TestEvictionKeepsHeavyHitters(t *testing.T) {
	const topK = 8
	m := NewMonitor(Config{TopK: topK, SampleEvery: 1})
	h := m.Handle(0)
	// Two heavy keys interleaved with a long tail of singletons.
	a, b := key(10000), key(10001)
	for i := 0; i < 500; i++ {
		h.Touch(obs.OpGet, a)
		h.Touch(obs.OpGet, b)
		h.Touch(obs.OpGet, key(i)) // 500 distinct cold keys
	}
	top := m.Snapshot().Shards[0].Top
	if len(top) != topK {
		t.Fatalf("len(top) = %d, want %d", len(top), topK)
	}
	if top[0].Count < top[1].Count {
		t.Fatalf("top not sorted: %+v", top[:2])
	}
	names := map[string]KeyCount{}
	for _, e := range top {
		names[e.Key] = e
	}
	for _, hot := range []kv.Key{a, b} {
		e, ok := names[hot.String()]
		if !ok {
			t.Fatalf("heavy hitter %q missing from top: %+v", hot.String(), top)
		}
		// Space-Saving guarantees count-err <= true <= count.
		if e.Count < 500 || e.Count-e.Err > 500 {
			t.Fatalf("heavy hitter %q: count=%d err=%d, want bracket around 500", e.Key, e.Count, e.Err)
		}
	}
}

// Concurrent handles on the same shard must be race-free (run with -race)
// and lose no sampled counts.
func TestConcurrentHandles(t *testing.T) {
	m := NewMonitor(Config{TopK: 16, SampleEvery: 1})
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := m.Handle(0)
			for i := 0; i < per; i++ {
				h.Touch(obs.OpGet, key(w%2)) // two hot keys across workers
			}
		}(w)
	}
	wg.Wait()
	sh := m.Snapshot().Shards[0]
	if sh.Total != workers*per {
		t.Fatalf("total = %d, want %d", sh.Total, workers*per)
	}
	var sum uint64
	for _, e := range sh.Top {
		sum += e.Count
	}
	if sum != workers*per {
		t.Fatalf("sum of top counts = %d, want %d", sum, workers*per)
	}
}

// The disabled path (Nop) and the unsampled path of an enabled Handle must
// both be allocation-free: these run on every Get/Put.
func TestTouchAllocs(t *testing.T) {
	k := key(1)
	var nop Sampler = Nop{}
	if n := testing.AllocsPerRun(1000, func() { nop.Touch(obs.OpGet, k) }); n != 0 {
		t.Fatalf("Nop.Touch allocates %v/op", n)
	}
	m := NewMonitor(Config{TopK: 4, SampleEvery: 1 << 30}) // effectively never samples
	h := m.Handle(0)
	if n := testing.AllocsPerRun(1000, func() { h.Touch(obs.OpGet, k) }); n != 0 {
		t.Fatalf("Handle.Touch (unsampled) allocates %v/op", n)
	}
}

// A nil Monitor must be fully usable: Handle degrades to Nop, Snapshot is
// empty. This is the disabled wiring in core.Options.
func TestNilMonitor(t *testing.T) {
	var m *Monitor
	h := m.Handle(0)
	if _, ok := h.(Nop); !ok {
		t.Fatalf("nil Monitor Handle = %T, want Nop", h)
	}
	h.Touch(obs.OpGet, key(0))
	if snap := m.Snapshot(); len(snap.Shards) != 0 {
		t.Fatalf("nil snapshot has shards: %+v", snap)
	}
}

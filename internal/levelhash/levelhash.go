// Package levelhash implements the LEVEL baseline: Level Hashing (Zuo, Hua,
// Wu — OSDI '18) as the HDNH paper configures it.
//
// Structure: two NVM-resident levels, the top with 2x the buckets of the
// bottom; every key has two candidate buckets per level (one per hash
// function). Inserts try all four candidates, then a single in-level cuckoo
// displacement, then the bottom-to-top eviction, and finally trigger a
// resize that allocates a 2x top level and rehashes the old bottom level
// into it (the old top is reused as the new bottom without rehashing).
//
// Concurrency follows the HDNH paper's description of LEVEL: slot-grained
// reader-writer locks plus a global resize lock. The lock words conceptually
// live in NVM next to their slots, so acquiring or releasing any lock —
// including a read lock — is charged as an 8-byte NVM write; this is exactly
// the bandwidth tax the HDNH paper criticises, and it is why LEVEL's search
// throughput collapses under concurrency in Figure 14(b).
//
// There is no DRAM metadata at all, so every probe during search or insert
// pays NVM read traffic — the contrast with HDNH's OCF.
package levelhash

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hdnh/internal/hashfn"
	"hdnh/internal/kv"
	"hdnh/internal/nvm"
	"hdnh/internal/scheme"
)

// Geometry: the original Level Hashing uses 4-slot buckets.
const (
	slotsPerBucket = 4
	slotWords      = kv.SlotWords
	bucketWords    = slotsPerBucket * slotWords
)

// Persistent metadata (root slot 1):
//
//	word 0  magic
//	word 1  state: top slot | bottom slot | generation (atomic switch)
//	words 2..7  three level descriptors (base, buckets)
const (
	metaWords    = nvm.BlockWords
	rootSlot     = 1
	metaMagic    = uint64(0x4c45564c48415348) // "LEVLHASH"
	magicWord    = 0
	stateWord    = 1
	levelBase    = 2
	numLevelDesc = 3
)

type state struct {
	top, bottom uint8
	generation  uint64
}

func (s state) pack() uint64 { return uint64(s.top) | uint64(s.bottom)<<2 | s.generation<<16 }
func unpack(w uint64) state {
	return state{top: uint8(w) & 3, bottom: uint8(w>>2) & 3, generation: w >> 16}
}

// rwSpin is a compact reader-writer spinlock; every transition is charged as
// an NVM write because Level Hashing keeps its lock words with the data.
type rwSpin struct{ v atomic.Int32 }

func (l *rwSpin) rlock() {
	for {
		v := l.v.Load()
		if v >= 0 && l.v.CompareAndSwap(v, v+1) {
			return
		}
		runtime.Gosched()
	}
}

func (l *rwSpin) runlock() { l.v.Add(-1) }

func (l *rwSpin) lock() {
	for !l.v.CompareAndSwap(0, -1) {
		runtime.Gosched()
	}
}

func (l *rwSpin) unlock() { l.v.Store(0) }

type levelArr struct {
	base    int64
	buckets int64
	locks   []rwSpin // one per slot
}

func newLevelArr(base, buckets int64) *levelArr {
	return &levelArr{base: base, buckets: buckets, locks: make([]rwSpin, buckets*slotsPerBucket)}
}

func (l *levelArr) slotWordOff(b int64, s int) int64 {
	return l.base + b*bucketWords + int64(s)*slotWords
}

func (l *levelArr) words() int64 { return l.buckets * bucketWords }

// Table is a Level Hashing instance.
type Table struct {
	dev     *nvm.Device
	metaOff int64

	resizeMu sync.RWMutex
	top      *levelArr
	bottom   *levelArr

	count atomic.Int64
}

// Options configures creation.
type Options struct {
	// InitTopBuckets is the initial top-level bucket count; the bottom
	// level has half as many. Any positive value works; powers of two are
	// conventional.
	InitTopBuckets int64
}

// New creates or opens a Level Hashing table on the device.
func New(dev *nvm.Device, opts Options) (*Table, error) {
	if opts.InitTopBuckets <= 0 {
		opts.InitTopBuckets = 64
	}
	if opts.InitTopBuckets%2 != 0 {
		opts.InitTopBuckets++
	}
	t := &Table{dev: dev}
	h := dev.NewHandle()
	if root := dev.Root(rootSlot); root != 0 {
		t.metaOff = int64(root)
		if dev.Load(t.metaOff+magicWord) != metaMagic {
			return nil, errors.New("levelhash: metadata magic mismatch")
		}
		st := t.state()
		topBase, topBuckets := t.descriptor(st.top)
		botBase, botBuckets := t.descriptor(st.bottom)
		t.top = newLevelArr(topBase, topBuckets)
		t.bottom = newLevelArr(botBase, botBuckets)
		t.count.Store(t.scanCount(h))
		return t, nil
	}
	metaOff, err := dev.Alloc(h, metaWords, nvm.BlockWords)
	if err != nil {
		return nil, fmt.Errorf("levelhash: allocating metadata: %w", err)
	}
	t.metaOff = metaOff
	topBuckets := opts.InitTopBuckets
	botBuckets := topBuckets / 2
	topBase, err := dev.Alloc(h, topBuckets*bucketWords, nvm.BlockWords)
	if err != nil {
		return nil, err
	}
	botBase, err := dev.Alloc(h, botBuckets*bucketWords, nvm.BlockWords)
	if err != nil {
		return nil, err
	}
	t.writeDescriptor(h, 0, topBase, topBuckets)
	t.writeDescriptor(h, 1, botBase, botBuckets)
	t.setState(h, state{top: 0, bottom: 1, generation: 1})
	h.StorePersist(metaOff+magicWord, metaMagic)
	dev.SetRoot(h, rootSlot, uint64(metaOff))
	t.top = newLevelArr(topBase, topBuckets)
	t.bottom = newLevelArr(botBase, botBuckets)
	return t, nil
}

func (t *Table) state() state { return unpack(t.dev.Load(t.metaOff + stateWord)) }

func (t *Table) setState(h *nvm.Handle, s state) {
	h.StorePersist(t.metaOff+stateWord, s.pack())
}

func (t *Table) descriptor(i uint8) (base, buckets int64) {
	return int64(t.dev.Load(t.metaOff + levelBase + 2*int64(i))),
		int64(t.dev.Load(t.metaOff + levelBase + 2*int64(i) + 1))
}

func (t *Table) writeDescriptor(h *nvm.Handle, i uint8, base, buckets int64) {
	w := t.metaOff + levelBase + 2*int64(i)
	h.Store(w, uint64(base))
	h.Store(w+1, uint64(buckets))
	h.WriteAccess(w, 2)
	h.Flush(w, 2)
	h.Fence()
}

// lockCharge models the NVM write caused by a lock-word transition.
func lockCharge(h *nvm.Handle, off int64) {
	h.WriteAccess(off, 1)
	h.Flush(off, 1)
}

// candidate buckets for a level: one per hash function.
func (l *levelArr) candidates(h1, h2 uint64) [2]int64 {
	b1 := int64(h1 % uint64(l.buckets))
	b2 := int64(h2 % uint64(l.buckets))
	if b2 == b1 {
		b2 = (b1 + 1) % l.buckets
	}
	return [2]int64{b1, b2}
}

// readSlot loads one slot with accounting.
func (l *levelArr) readSlot(h *nvm.Handle, b int64, s int) (w [slotWords]uint64) {
	off := l.slotWordOff(b, s)
	h.ReadAccess(off, slotWords)
	for i := range w {
		w[i] = h.Load(off + int64(i))
	}
	return w
}

// writeSlotCommit persists a record into slot (b, s) with the standard
// two-step crash-atomic ordering.
func (l *levelArr) writeSlotCommit(h *nvm.Handle, b int64, s int, k kv.Key, v kv.Value) {
	off := l.slotWordOff(b, s)
	var w [slotWords]uint64
	kv.PackRecord(w[:], k, v, kv.MetaValid)
	h.Store(off, w[0])
	h.Store(off+1, w[1])
	h.Store(off+2, w[2])
	h.WriteAccess(off, 3)
	h.Flush(off, 3)
	h.Fence()
	h.StorePersist(off+3, w[3])
}

func (l *levelArr) clearSlot(h *nvm.Handle, b int64, s int, w3 uint64) {
	h.StorePersist(l.slotWordOff(b, s)+3, kv.WithMeta(w3, 0))
}

// Count returns live records.
func (t *Table) Count() int64 { return t.count.Load() }

// Capacity returns total slots.
func (t *Table) Capacity() int64 {
	t.resizeMu.RLock()
	defer t.resizeMu.RUnlock()
	return (t.top.buckets + t.bottom.buckets) * slotsPerBucket
}

// LoadFactor returns occupancy.
func (t *Table) LoadFactor() float64 {
	c := t.Capacity()
	if c == 0 {
		return 0
	}
	return float64(t.Count()) / float64(c)
}

func (t *Table) scanCount(h *nvm.Handle) int64 {
	st := t.state()
	var n int64
	for _, i := range []uint8{st.top, st.bottom} {
		base, buckets := t.descriptor(i)
		for b := int64(0); b < buckets; b++ {
			h.ReadAccess(base+b*bucketWords, bucketWords)
			for s := 0; s < slotsPerBucket; s++ {
				if kv.ValidOf(h.Load(base + b*bucketWords + int64(s)*slotWords + 3)) {
					n++
				}
			}
		}
	}
	return n
}

// Session is the per-goroutine operation handle.
type Session struct {
	t *Table
	h *nvm.Handle
}

// NewSession returns a session.
func (t *Table) NewSession() *Session { return &Session{t: t, h: t.dev.NewHandle()} }

// NVMStats returns session traffic.
func (s *Session) NVMStats() nvm.Stats { return s.h.Stats() }

// Close is a no-op: sessions hold no table-side resources.
func (s *Session) Close() error { return nil }

// Get searches both levels' candidate buckets, slot by slot, taking (and
// paying for) a read lock per slot probed — Level Hashing has no filter, so
// every probe is an NVM read.
func (s *Session) Get(k kv.Key) (kv.Value, bool) {
	h1, h2 := hashfn.Pair(k[:])
	kw0, kw1 := k.Pack()
	s.t.resizeMu.RLock()
	defer s.t.resizeMu.RUnlock()
	for _, lvl := range [2]*levelArr{s.t.top, s.t.bottom} {
		for _, b := range lvl.candidates(h1, h2) {
			for slot := 0; slot < slotsPerBucket; slot++ {
				lk := &lvl.locks[b*slotsPerBucket+int64(slot)]
				lk.rlock()
				lockCharge(s.h, lvl.slotWordOff(b, slot))
				w := lvl.readSlot(s.h, b, slot)
				hit := kv.ValidOf(w[3]) && w[0] == kw0 && w[1] == kw1
				lk.runlock()
				lockCharge(s.h, lvl.slotWordOff(b, slot))
				if hit {
					v, _ := kv.UnpackValue(w[2], w[3])
					return v, true
				}
			}
		}
	}
	return kv.Value{}, false
}

// Insert places a new record, using displacement and bottom-to-top eviction
// before resizing.
func (s *Session) Insert(k kv.Key, v kv.Value) error {
	h1, h2 := hashfn.Pair(k[:])
	for attempt := 0; attempt < 24; attempt++ {
		s.t.resizeMu.RLock()
		if _, dup := s.lookupLocked(k, h1, h2); dup {
			s.t.resizeMu.RUnlock()
			return scheme.ErrExists
		}
		if s.tryPlace(k, v, h1, h2) {
			s.t.count.Add(1)
			s.t.resizeMu.RUnlock()
			return nil
		}
		gen := s.t.state().generation
		s.t.resizeMu.RUnlock()
		if err := s.t.expand(gen); err != nil {
			return err
		}
	}
	return scheme.ErrFull
}

// lookupLocked is Get's probe without the outer lock (caller holds it),
// returning the slot position.
func (s *Session) lookupLocked(k kv.Key, h1, h2 uint64) (pos [3]int64, found bool) {
	kw0, kw1 := k.Pack()
	for li, lvl := range [2]*levelArr{s.t.top, s.t.bottom} {
		for _, b := range lvl.candidates(h1, h2) {
			for slot := 0; slot < slotsPerBucket; slot++ {
				lk := &lvl.locks[b*slotsPerBucket+int64(slot)]
				lk.rlock()
				lockCharge(s.h, lvl.slotWordOff(b, slot))
				w := lvl.readSlot(s.h, b, slot)
				hit := kv.ValidOf(w[3]) && w[0] == kw0 && w[1] == kw1
				lk.runlock()
				lockCharge(s.h, lvl.slotWordOff(b, slot))
				if hit {
					return [3]int64{int64(li), b, int64(slot)}, true
				}
			}
		}
	}
	return pos, false
}

// tryPlace attempts: empty slot in any candidate bucket; one cuckoo
// displacement in the top level; bottom-to-top eviction.
func (s *Session) tryPlace(k kv.Key, v kv.Value, h1, h2 uint64) bool {
	for _, lvl := range [2]*levelArr{s.t.top, s.t.bottom} {
		for _, b := range lvl.candidates(h1, h2) {
			if s.placeInBucket(lvl, b, k, v) {
				return true
			}
		}
	}
	// One-step displacement: move an item from a top candidate to its own
	// alternate top bucket.
	if s.displace(s.t.top, h1, h2, k, v) {
		return true
	}
	// Bottom-to-top eviction: move an item from a bottom candidate up to
	// the top level to make room (the mechanism the HDNH paper calls out
	// as expensive).
	return s.displace(s.t.bottom, h1, h2, k, v)
}

func (s *Session) placeInBucket(lvl *levelArr, b int64, k kv.Key, v kv.Value) bool {
	for slot := 0; slot < slotsPerBucket; slot++ {
		lk := &lvl.locks[b*slotsPerBucket+int64(slot)]
		lk.lock()
		lockCharge(s.h, lvl.slotWordOff(b, slot))
		w := lvl.readSlot(s.h, b, slot)
		if kv.ValidOf(w[3]) {
			lk.unlock()
			lockCharge(s.h, lvl.slotWordOff(b, slot))
			continue
		}
		lvl.writeSlotCommit(s.h, b, int64ToInt(slot), k, v)
		lk.unlock()
		lockCharge(s.h, lvl.slotWordOff(b, slot))
		return true
	}
	return false
}

func int64ToInt(s int) int { return s }

// displace moves one record out of srcLvl's candidate buckets to make room
// for (k, v). For the top level the record moves to its alternate top
// bucket; for the bottom level it moves up into the top level.
func (s *Session) displace(srcLvl *levelArr, h1, h2 uint64, k kv.Key, v kv.Value) bool {
	dstLvl := s.t.top
	for _, b := range srcLvl.candidates(h1, h2) {
		for slot := 0; slot < slotsPerBucket; slot++ {
			lk := &srcLvl.locks[b*slotsPerBucket+int64(slot)]
			lk.lock()
			lockCharge(s.h, srcLvl.slotWordOff(b, slot))
			w := srcLvl.readSlot(s.h, b, slot)
			if !kv.ValidOf(w[3]) {
				lk.unlock()
				lockCharge(s.h, srcLvl.slotWordOff(b, slot))
				continue
			}
			vk := kv.UnpackKey(w[0], w[1])
			vv, _ := kv.UnpackValue(w[2], w[3])
			vh1, vh2 := hashfn.Pair(vk[:])
			moved := false
			for _, db := range dstLvl.candidates(vh1, vh2) {
				if dstLvl == srcLvl && db == b {
					continue
				}
				if s.placeInBucket(dstLvl, db, vk, vv) {
					moved = true
					break
				}
			}
			if moved {
				srcLvl.clearSlot(s.h, b, slot, w[3])
				// The freed slot takes the new record.
				srcLvl.writeSlotCommit(s.h, b, slot, k, v)
				lk.unlock()
				lockCharge(s.h, srcLvl.slotWordOff(b, slot))
				return true
			}
			lk.unlock()
			lockCharge(s.h, srcLvl.slotWordOff(b, slot))
		}
	}
	return false
}

// Update rewrites a record in place under its slot write lock, as Level
// Hashing does for fitting values. Note: an in-place rewrite of a 31-byte
// value spans multiple words, so a crash mid-update can tear it — a known
// limitation of in-place updates on PM that HDNH's out-of-place protocol
// avoids; the crash-consistency test matrix for this baseline therefore
// covers inserts (which are crash-atomic here) but not updates.
func (s *Session) Update(k kv.Key, v kv.Value) error {
	h1, h2 := hashfn.Pair(k[:])
	kw0, kw1 := k.Pack()
	s.t.resizeMu.RLock()
	defer s.t.resizeMu.RUnlock()
	for _, lvl := range [2]*levelArr{s.t.top, s.t.bottom} {
		for _, b := range lvl.candidates(h1, h2) {
			for slot := 0; slot < slotsPerBucket; slot++ {
				lk := &lvl.locks[b*slotsPerBucket+int64(slot)]
				lk.lock()
				lockCharge(s.h, lvl.slotWordOff(b, slot))
				w := lvl.readSlot(s.h, b, slot)
				if kv.ValidOf(w[3]) && w[0] == kw0 && w[1] == kw1 {
					lvl.writeSlotCommit(s.h, b, slot, k, v)
					lk.unlock()
					lockCharge(s.h, lvl.slotWordOff(b, slot))
					return nil
				}
				lk.unlock()
				lockCharge(s.h, lvl.slotWordOff(b, slot))
			}
		}
	}
	return scheme.ErrNotFound
}

// Delete clears the record's valid bit under its slot write lock.
func (s *Session) Delete(k kv.Key) error {
	h1, h2 := hashfn.Pair(k[:])
	kw0, kw1 := k.Pack()
	s.t.resizeMu.RLock()
	defer s.t.resizeMu.RUnlock()
	for _, lvl := range [2]*levelArr{s.t.top, s.t.bottom} {
		for _, b := range lvl.candidates(h1, h2) {
			for slot := 0; slot < slotsPerBucket; slot++ {
				lk := &lvl.locks[b*slotsPerBucket+int64(slot)]
				lk.lock()
				lockCharge(s.h, lvl.slotWordOff(b, slot))
				w := lvl.readSlot(s.h, b, slot)
				if kv.ValidOf(w[3]) && w[0] == kw0 && w[1] == kw1 {
					lvl.clearSlot(s.h, b, slot, w[3])
					lk.unlock()
					lockCharge(s.h, lvl.slotWordOff(b, slot))
					s.t.count.Add(-1)
					return nil
				}
				lk.unlock()
				lockCharge(s.h, lvl.slotWordOff(b, slot))
			}
		}
	}
	return scheme.ErrNotFound
}

// expand performs the level-hashing resize: a new top level with twice the
// old top's buckets is allocated, the old bottom is rehashed into it, and
// the old top becomes the new bottom. The global resize lock blocks all
// operations, which is exactly the insertion stall Figure 14(a) shows.
func (t *Table) expand(observedGen uint64) error {
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	st := t.state()
	if st.generation != observedGen {
		return nil
	}
	h := t.dev.NewHandle()
	free := uint8(0)
	for free == st.top || free == st.bottom {
		free++
	}
	newBuckets := 2 * t.top.buckets
	base, err := t.dev.Alloc(h, newBuckets*bucketWords, nvm.BlockWords)
	if err != nil {
		return fmt.Errorf("%w: levelhash resize: %v", scheme.ErrFull, err)
	}
	t.writeDescriptor(h, free, base, newBuckets)
	newTop := newLevelArr(base, newBuckets)

	// Rehash old bottom into the new top (copy, then switch).
	src := t.bottom
	for b := int64(0); b < src.buckets; b++ {
		h.ReadAccess(src.base+b*bucketWords, bucketWords)
		for slot := 0; slot < slotsPerBucket; slot++ {
			w3 := h.Load(src.slotWordOff(b, slot) + 3)
			if !kv.ValidOf(w3) {
				continue
			}
			off := src.slotWordOff(b, slot)
			k := kv.UnpackKey(h.Load(off), h.Load(off+1))
			v, _ := kv.UnpackValue(h.Load(off+2), w3)
			h1, h2 := hashfn.Pair(k[:])
			placed := false
			for _, db := range newTop.candidates(h1, h2) {
				for ds := 0; ds < slotsPerBucket; ds++ {
					if !kv.ValidOf(h.Load(newTop.slotWordOff(db, ds) + 3)) {
						newTop.writeSlotCommit(h, db, ds, k, v)
						placed = true
						break
					}
				}
				if placed {
					break
				}
			}
			if !placed {
				return fmt.Errorf("%w: levelhash rehash overflow", scheme.ErrFull)
			}
		}
	}
	// Atomic switch: new top live, old top demoted, old bottom retired.
	t.setState(h, state{top: free, bottom: st.top, generation: st.generation + 1})
	t.bottom = t.top
	t.top = newTop
	return nil
}

// Close is a no-op (no background machinery).
func (t *Table) Close() error { return nil }

func init() {
	scheme.Register("LEVEL", func(dev *nvm.Device, capacityHint int64) (scheme.Store, error) {
		// Size so a hint-record load lands near 60% without resizing:
		// capacity = (top + top/2) * 4 slots.
		top := int64(64)
		if capacityHint > 0 {
			want := capacityHint * 10 / 6 / (slotsPerBucket * 3 / 2)
			for top < want {
				top *= 2
			}
		}
		t, err := New(dev, Options{InitTopBuckets: top})
		if err != nil {
			return nil, err
		}
		return &store{t}, nil
	})
}

type store struct{ t *Table }

var _ scheme.Store = (*store)(nil)

func (s *store) Name() string               { return "LEVEL" }
func (s *store) NewSession() scheme.Session { return s.t.NewSession() }
func (s *store) Count() int64               { return s.t.Count() }
func (s *store) Capacity() int64            { return s.t.Capacity() }
func (s *store) LoadFactor() float64        { return s.t.LoadFactor() }
func (s *store) Close() error               { return s.t.Close() }

var _ scheme.Session = (*Session)(nil)

package levelhash_test

import (
	"testing"

	"hdnh/internal/kv"
	"hdnh/internal/levelhash"
	"hdnh/internal/nvm"
	"hdnh/internal/schemetest"
)

func TestConformance(t *testing.T) {
	schemetest.Run(t, "LEVEL", schemetest.Config{DeviceWords: 1 << 23})
}

func TestSearchChargesLockWrites(t *testing.T) {
	// The defining cost of LEVEL per the HDNH paper: read locks are NVM
	// writes, so even a pure search workload produces write traffic.
	dev, err := nvm.New(nvm.DefaultConfig(1 << 20))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := levelhash.New(dev, levelhash.Options{InitTopBuckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.NewSession()
	k := kv.MustKey([]byte("lockcharge"))
	if err := s.Insert(k, kv.MustValue([]byte("v"))); err != nil {
		t.Fatal(err)
	}
	before := s.NVMStats()
	for i := 0; i < 100; i++ {
		if _, ok := s.Get(k); !ok {
			t.Fatal("lost key")
		}
	}
	delta := s.NVMStats().Sub(before)
	if delta.WriteAccesses == 0 || delta.Flushes == 0 {
		t.Fatalf("searches produced no lock-word NVM writes: %+v", delta)
	}
	if delta.ReadAccesses == 0 {
		t.Fatal("searches produced no NVM reads (LEVEL has no filter)")
	}
}

func TestReopenKeepsData(t *testing.T) {
	cfg := nvm.StrictConfig(1 << 20)
	dev, err := nvm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := levelhash.New(dev, levelhash.Options{InitTopBuckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.NewSession()
	keys := make([]kv.Key, 200)
	for i := range keys {
		keys[i] = kv.MustKey([]byte{byte(i), byte(i >> 8), 'L', 'v'})
		if err := s.Insert(keys[i], kv.MustValue([]byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	dev2, err := nvm.FromImage(cfg, dev.PersistedImage())
	if err != nil {
		t.Fatal(err)
	}
	tbl2, err := levelhash.New(dev2, levelhash.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if tbl2.Count() != 200 {
		t.Fatalf("Count after reopen = %d", tbl2.Count())
	}
	s2 := tbl2.NewSession()
	for i, k := range keys {
		if v, ok := s2.Get(k); !ok || v[0] != byte(i) {
			t.Fatalf("key %d wrong after reopen", i)
		}
	}
}

package levelhash_test

import (
	"fmt"
	"testing"

	"hdnh/internal/kv"
	"hdnh/internal/levelhash"
	"hdnh/internal/nvm"
)

func crashKey(i int) kv.Key     { return kv.MustKey([]byte(fmt.Sprintf("lv-crash-%06d", i))) }
func crashValue(i int) kv.Value { return kv.MustValue([]byte(fmt.Sprintf("v%06d", i))) }

// TestCrashSweepDuringInserts checks Level Hashing's slot-commit protocol:
// at any flush-aligned crash point, recovery sees a table where every
// present record is intact (never torn) and survivors form a prefix of the
// acknowledged inserts.
func TestCrashSweepDuringInserts(t *testing.T) {
	for f := int64(1); f < 160; f += 7 {
		f := f
		t.Run(fmt.Sprintf("flush%d", f), func(t *testing.T) {
			cfg := nvm.StrictConfig(1 << 20)
			cfg.EvictProb = 0.3
			cfg.Seed = uint64(f) ^ 0x11ef
			dev, err := nvm.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := levelhash.New(dev, levelhash.Options{InitTopBuckets: 256})
			if err != nil {
				t.Fatal(err)
			}
			if err := dev.SetCrashAfterFlushes(f); err != nil {
				t.Fatal(err)
			}
			s := tbl.NewSession()
			const n = 60
			for i := 0; i < n; i++ {
				if err := s.Insert(crashKey(i), crashValue(i)); err != nil {
					t.Fatal(err)
				}
			}
			img := dev.CrashImage()
			if img == nil {
				return
			}
			dev2, err := nvm.FromImage(cfg, img)
			if err != nil {
				t.Fatal(err)
			}
			tbl2, err := levelhash.New(dev2, levelhash.Options{})
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			s2 := tbl2.NewSession()
			firstMissing := -1
			for i := 0; i < n; i++ {
				v, ok := s2.Get(crashKey(i))
				if ok && v != crashValue(i) {
					t.Fatalf("key %d torn after crash: %q", i, v.String())
				}
				if !ok && firstMissing < 0 {
					firstMissing = i
				}
				if ok && firstMissing >= 0 {
					t.Fatalf("non-prefix survival: key %d missing, key %d present", firstMissing, i)
				}
			}
		})
	}
}

// TestCrashDuringResizeKeepsOldStructure checks the copy-then-switch resize:
// a crash before the atomic state switch leaves the old structure fully
// intact; one after it leaves the new structure complete.
func TestCrashDuringResizeKeepsOldStructure(t *testing.T) {
	for f := int64(1); f < 400; f += 13 {
		f := f
		t.Run(fmt.Sprintf("flush%d", f), func(t *testing.T) {
			cfg := nvm.StrictConfig(1 << 20)
			cfg.EvictProb = 0.3
			cfg.Seed = uint64(f) + 99
			dev, err := nvm.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := levelhash.New(dev, levelhash.Options{InitTopBuckets: 8})
			if err != nil {
				t.Fatal(err)
			}
			s := tbl.NewSession()
			// Load until the first resize completes, arming mid-way.
			loaded := 0
			capBefore := tbl.Capacity()
			armed := false
			for tbl.Capacity() == capBefore && loaded < 100000 {
				if loaded == 20 && !armed {
					if err := dev.SetCrashAfterFlushes(f); err != nil {
						t.Fatal(err)
					}
					armed = true
				}
				if err := s.Insert(crashKey(loaded), crashValue(loaded)); err != nil {
					t.Fatal(err)
				}
				loaded++
			}
			img := dev.CrashImage()
			if img == nil {
				t.Skip("resize finished before the crash point")
			}
			dev2, err := nvm.FromImage(cfg, img)
			if err != nil {
				t.Fatal(err)
			}
			tbl2, err := levelhash.New(dev2, levelhash.Options{})
			if err != nil {
				t.Fatalf("reopen after mid-resize crash: %v", err)
			}
			s2 := tbl2.NewSession()
			firstMissing := -1
			for i := 0; i < loaded; i++ {
				v, ok := s2.Get(crashKey(i))
				if ok && v != crashValue(i) {
					t.Fatalf("key %d corrupt after mid-resize crash", i)
				}
				if !ok && firstMissing < 0 {
					firstMissing = i
				}
				if ok && firstMissing >= 0 {
					t.Fatalf("non-prefix survival across resize crash")
				}
			}
			// Table must remain usable.
			if err := s2.Insert(crashKey(200000), crashValue(1)); err != nil {
				t.Fatalf("insert after recovery: %v", err)
			}
		})
	}
}

package nvm

import (
	"runtime"
	"time"
)

// spinWait busy-waits for roughly d. Sub-microsecond delays cannot be slept
// accurately (timer granularity is ~50µs+), so the emulated device burns the
// time on-CPU exactly as a stalled load would. Long waits yield occasionally
// so the scheduler stays healthy.
func spinWait(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	for i := 0; time.Since(start) < d; i++ {
		if i%1024 == 1023 {
			runtime.Gosched()
		}
	}
}

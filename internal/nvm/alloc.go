package nvm

import (
	"errors"
	"fmt"
)

// The superblock occupies the first words of every device:
//
//	word 0            magic
//	word 1            allocation head (next free word)
//	words 8..23       sixteen root pointers for client structures
//
// Root pointers are how recovery finds persistent structures after a crash:
// a scheme stores the word offset of its top-level metadata in a root slot.
const (
	SuperblockWords = 64

	superMagicWord = 0
	superAllocWord = 1
	superRootBase  = 8

	// NumRoots is how many root pointer slots the superblock provides.
	NumRoots = 16

	superMagic = uint64(0x48444e485f4e564d) // "HDNH_NVM"
)

// ErrOutOfSpace is returned when an allocation does not fit on the device.
var ErrOutOfSpace = errors.New("nvm: out of space")

func (d *Device) formatSuperblock() {
	d.words[superMagicWord] = superMagic
	d.words[superAllocWord] = SuperblockWords
	if d.cfg.Mode == ModeStrict {
		copy(d.persisted, d.words[:SuperblockWords])
	}
}

func (d *Device) checkSuperblock() error {
	if d.Load(superMagicWord) != superMagic {
		return errors.New("nvm: image superblock magic mismatch (not a formatted device)")
	}
	head := int64(d.Load(superAllocWord))
	if head < SuperblockWords || head > d.cfg.Words {
		return fmt.Errorf("nvm: image allocation head %d out of range", head)
	}
	return nil
}

// Alloc durably bump-allocates n words aligned to alignWords (which must be
// a power of two; 0 or 1 means word alignment) and returns the word offset.
// The allocation head is persisted through h before Alloc returns, so a
// crash never leaks a structure the caller already linked into a root.
func (d *Device) Alloc(h *Handle, n, alignWords int64) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("nvm: allocation of %d words", n)
	}
	if alignWords <= 0 {
		alignWords = 1
	}
	if alignWords&(alignWords-1) != 0 {
		return 0, fmt.Errorf("nvm: alignment %d is not a power of two", alignWords)
	}
	d.allocMu.Lock()
	defer d.allocMu.Unlock()
	head := int64(d.Load(superAllocWord))
	off := (head + alignWords - 1) &^ (alignWords - 1)
	if off+n > d.cfg.Words {
		return 0, fmt.Errorf("%w: want %d words at %d, capacity %d", ErrOutOfSpace, n, off, d.cfg.Words)
	}
	h.StorePersist(superAllocWord, uint64(off+n))
	return off, nil
}

// FreeWords reports how many words remain allocatable.
func (d *Device) FreeWords() int64 {
	d.allocMu.Lock()
	defer d.allocMu.Unlock()
	return d.cfg.Words - int64(d.Load(superAllocWord))
}

// SetRoot durably stores v in root slot i.
func (d *Device) SetRoot(h *Handle, i int, v uint64) {
	if i < 0 || i >= NumRoots {
		panic(fmt.Sprintf("nvm: root index %d out of range", i))
	}
	h.StorePersist(superRootBase+int64(i), v)
}

// Root reads root slot i.
func (d *Device) Root(i int) uint64 {
	if i < 0 || i >= NumRoots {
		panic(fmt.Sprintf("nvm: root index %d out of range", i))
	}
	return d.Load(superRootBase + int64(i))
}

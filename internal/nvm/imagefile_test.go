package nvm

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveImageToFileAndLoadImageFile(t *testing.T) {
	d := newTestDevice(t, DefaultConfig(2048))
	h := d.NewHandle()
	h.WriteWords(500, []uint64{7, 8, 9})
	h.Flush(500, 3)
	d.SetRoot(h, 2, 500)

	path := filepath.Join(t.TempDir(), "dev.img")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SaveImage(f); err != nil {
		t.Fatalf("SaveImage: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	img, err := LoadImageFile(path)
	if err != nil {
		t.Fatalf("LoadImageFile: %v", err)
	}
	d2, err := FromImage(DefaultConfig(2048), img)
	if err != nil {
		t.Fatalf("FromImage: %v", err)
	}
	if d2.Root(2) != 500 || d2.Load(501) != 8 {
		t.Fatal("image file round trip lost data")
	}
}

func TestLoadImageFileMissing(t *testing.T) {
	if _, err := LoadImageFile(filepath.Join(t.TempDir(), "nope.img")); err == nil {
		t.Fatal("missing file accepted")
	}
}

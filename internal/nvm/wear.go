package nvm

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Wear tracking (optional, Config.TrackWear): persistent memory has bounded
// write endurance, so a hashing scheme's *write distribution* matters as
// much as its write volume — a scheme that hammers a few metadata blocks
// ages them out long before the media average. When enabled, the device
// counts flushed lines per 256-byte block; WearStats summarises the skew.

// WearStats summarises the per-block write distribution.
type WearStats struct {
	// TotalLineWrites is the number of cache-line flushes counted.
	TotalLineWrites uint64
	// TouchedBlocks is how many blocks received at least one write.
	TouchedBlocks int64
	// MaxBlockWrites is the hottest block's count, and MaxBlock its index.
	MaxBlockWrites uint64
	MaxBlock       int64
	// MeanWrites is TotalLineWrites / TouchedBlocks.
	MeanWrites float64
	// P99Writes is the 99th percentile count among touched blocks.
	P99Writes uint64
	// SkewRatio is MaxBlockWrites / MeanWrites: 1 = perfectly even wear.
	SkewRatio float64
}

// String renders a one-line summary.
func (w WearStats) String() string {
	return fmt.Sprintf("wear: %d line writes over %d blocks, mean %.1f, p99 %d, max %d (block %d, %.1fx mean)",
		w.TotalLineWrites, w.TouchedBlocks, w.MeanWrites, w.P99Writes, w.MaxBlockWrites, w.MaxBlock, w.SkewRatio)
}

// recordWear counts flushed lines against their blocks.
func (d *Device) recordWear(w, n int64) {
	if d.wear == nil {
		return
	}
	first := w / BlockWords
	last := (w + n - 1) / BlockWords
	for b := first; b <= last && b < int64(len(d.wear)); b++ {
		atomic.AddUint64(&d.wear[b], 1)
	}
}

// WearEnabled reports whether the device tracks wear.
func (d *Device) WearEnabled() bool { return d.wear != nil }

// WearStats summarises the write distribution so far. Returns the zero
// value when tracking is disabled.
func (d *Device) WearStats() WearStats {
	if d.wear == nil {
		return WearStats{}
	}
	var st WearStats
	counts := make([]uint64, 0, 1024)
	for b := range d.wear {
		c := atomic.LoadUint64(&d.wear[b])
		if c == 0 {
			continue
		}
		st.TotalLineWrites += c
		st.TouchedBlocks++
		if c > st.MaxBlockWrites {
			st.MaxBlockWrites = c
			st.MaxBlock = int64(b)
		}
		counts = append(counts, c)
	}
	if st.TouchedBlocks == 0 {
		return st
	}
	st.MeanWrites = float64(st.TotalLineWrites) / float64(st.TouchedBlocks)
	sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
	st.P99Writes = counts[len(counts)*99/100]
	st.SkewRatio = float64(st.MaxBlockWrites) / st.MeanWrites
	return st
}

// HottestBlocks returns the n most-written block indexes with their counts,
// hottest first.
func (d *Device) HottestBlocks(n int) []struct {
	Block  int64
	Writes uint64
} {
	type bw struct {
		Block  int64
		Writes uint64
	}
	if d.wear == nil || n <= 0 {
		return nil
	}
	all := make([]bw, 0, 1024)
	for b := range d.wear {
		if c := atomic.LoadUint64(&d.wear[b]); c > 0 {
			all = append(all, bw{int64(b), c})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Writes > all[j].Writes })
	if len(all) > n {
		all = all[:n]
	}
	out := make([]struct {
		Block  int64
		Writes uint64
	}, len(all))
	for i, e := range all {
		out[i] = struct {
			Block  int64
			Writes uint64
		}{e.Block, e.Writes}
	}
	return out
}

package nvm_test

import (
	"fmt"

	"hdnh/internal/nvm"
)

// Example shows the accounting workflow every persistent structure in this
// repository follows: allocate, write, flush, fence, and read back with
// explicit access accounting.
func Example() {
	dev, err := nvm.New(nvm.DefaultConfig(1024))
	if err != nil {
		panic(err)
	}
	h := dev.NewHandle()

	off, err := dev.Alloc(h, 4, nvm.BlockWords)
	if err != nil {
		panic(err)
	}
	h.WriteWords(off, []uint64{1, 2, 3, 4})
	h.Flush(off, 4)
	h.Fence()

	dst := make([]uint64, 4)
	h.ReadWords(off, dst)
	fmt.Println(dst[2])

	s := h.Stats()
	fmt.Println(s.WriteAccesses > 0, s.ReadAccesses > 0, s.Fences > 0)
	// Output:
	// 3
	// true true true
}

// Example_crash demonstrates the strict-mode persistence model: unflushed
// stores do not survive a power failure.
func Example_crash() {
	cfg := nvm.StrictConfig(1024)
	cfg.EvictProb = 0 // nothing survives by accident
	dev, _ := nvm.New(cfg)
	h := dev.NewHandle()

	dev.Store(512, 7) // durable after the flush below
	h.Flush(512, 1)
	h.Fence()
	dev.Store(513, 8) // never flushed: lost at the crash

	_ = dev.Crash()
	fmt.Println(dev.Load(512), dev.Load(513))
	// Output: 7 0
}

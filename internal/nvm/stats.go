package nvm

import (
	"fmt"
	"time"
)

// Stats counts the NVM traffic a handle generated. All fields are plain
// integers: a Stats belongs to exactly one handle until merged.
type Stats struct {
	// ReadAccesses is the number of logical read operations (bucket/slot
	// probes), ReadWords the words they covered, and MediaBlockReads the
	// 256-byte XPLines they touched — the paper's read-amplification metric.
	ReadAccesses    uint64
	ReadWords       uint64
	MediaBlockReads uint64

	// WriteAccesses / WriteWords count logical writes (before flushing).
	WriteAccesses uint64
	WriteWords    uint64

	// Flushes counts flushed cache lines (CLWB) and Fences ordering points.
	Flushes uint64
	Fences  uint64

	// ModeledNanos accumulates the latency model's cost for all of the
	// above, usable as a deterministic time proxy in ModeModel.
	ModeledNanos uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.ReadAccesses += other.ReadAccesses
	s.ReadWords += other.ReadWords
	s.MediaBlockReads += other.MediaBlockReads
	s.WriteAccesses += other.WriteAccesses
	s.WriteWords += other.WriteWords
	s.Flushes += other.Flushes
	s.Fences += other.Fences
	s.ModeledNanos += other.ModeledNanos
}

// Sub returns s minus other, for interval deltas.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		ReadAccesses:    s.ReadAccesses - other.ReadAccesses,
		ReadWords:       s.ReadWords - other.ReadWords,
		MediaBlockReads: s.MediaBlockReads - other.MediaBlockReads,
		WriteAccesses:   s.WriteAccesses - other.WriteAccesses,
		WriteWords:      s.WriteWords - other.WriteWords,
		Flushes:         s.Flushes - other.Flushes,
		Fences:          s.Fences - other.Fences,
		ModeledNanos:    s.ModeledNanos - other.ModeledNanos,
	}
}

// ReadBytes returns the bytes covered by logical reads.
func (s Stats) ReadBytes() uint64 { return s.ReadWords * WordBytes }

// WriteBytes returns the bytes covered by logical writes.
func (s Stats) WriteBytes() uint64 { return s.WriteWords * WordBytes }

// MediaReadBytes returns bytes actually moved from media, block-granular.
func (s Stats) MediaReadBytes() uint64 { return s.MediaBlockReads * BlockBytes }

// ReadAmplification is media bytes read divided by bytes the program asked
// for; 0 when no reads happened.
func (s Stats) ReadAmplification() float64 {
	if s.ReadBytes() == 0 {
		return 0
	}
	return float64(s.MediaReadBytes()) / float64(s.ReadBytes())
}

// Modeled returns the accumulated modeled duration.
func (s Stats) Modeled() time.Duration { return time.Duration(s.ModeledNanos) }

// String renders a compact single-line summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"reads=%d (%.1f MB, %.1f MB media, amp %.2f) writes=%d (%.1f MB) flushes=%d fences=%d modeled=%v",
		s.ReadAccesses, mb(s.ReadBytes()), mb(s.MediaReadBytes()), s.ReadAmplification(),
		s.WriteAccesses, mb(s.WriteBytes()), s.Flushes, s.Fences, s.Modeled().Round(time.Microsecond))
}

func mb(b uint64) float64 { return float64(b) / (1 << 20) }

// MergeStats sums the statistics of a set of handles, the usual end-of-run
// aggregation across worker goroutines.
func MergeStats(handles []*Handle) Stats {
	var total Stats
	for _, h := range handles {
		total.Add(h.Stats())
	}
	return total
}

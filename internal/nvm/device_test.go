package nvm

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestDevice(t *testing.T, cfg Config) *Device {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"default", func(c *Config) {}, true},
		{"too small", func(c *Config) { c.Words = SuperblockWords - 1 }, false},
		{"unaligned", func(c *Config) { c.Words = BlockWords*4 + 1 }, false},
		{"bad evict prob", func(c *Config) { c.EvictProb = 1.5 }, false},
		{"evict prob zero", func(c *Config) { c.EvictProb = 0 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(1024)
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{ModeModel: "model", ModeEmulate: "emulate", ModeStrict: "strict", Mode(9): "Mode(9)"} {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	d := newTestDevice(t, DefaultConfig(1024))
	d.Store(100, 0xdeadbeef)
	if got := d.Load(100); got != 0xdeadbeef {
		t.Fatalf("Load(100) = %#x, want 0xdeadbeef", got)
	}
	if got := d.Load(101); got != 0 {
		t.Fatalf("Load(101) = %#x, want 0 (untouched word)", got)
	}
}

func TestCAS(t *testing.T) {
	d := newTestDevice(t, DefaultConfig(1024))
	d.Store(64, 7)
	if d.CAS(64, 8, 9) {
		t.Fatal("CAS with wrong old value succeeded")
	}
	if !d.CAS(64, 7, 9) {
		t.Fatal("CAS with correct old value failed")
	}
	if got := d.Load(64); got != 9 {
		t.Fatalf("after CAS, Load = %d, want 9", got)
	}
}

func TestAdd(t *testing.T) {
	d := newTestDevice(t, DefaultConfig(1024))
	if got := d.Add(70, 5); got != 5 {
		t.Fatalf("Add returned %d, want 5", got)
	}
	if got := d.Add(70, 3); got != 8 {
		t.Fatalf("second Add returned %d, want 8", got)
	}
}

func TestConcurrentStoresAreAtomic(t *testing.T) {
	d := newTestDevice(t, DefaultConfig(1024))
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				d.Add(128, 1)
			}
		}()
	}
	wg.Wait()
	if got := d.Load(128); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestSpanHelpers(t *testing.T) {
	cases := []struct {
		w, n           int64
		blocks, caches int64
	}{
		{0, 0, 0, 0},
		{0, 1, 1, 1},
		{0, 32, 1, 4},
		{31, 2, 2, 1}, // crosses a block boundary but stays in line 3..4? words 31,32: lines 3,4
		{0, 33, 2, 5},
		{60, 8, 2, 2},
	}
	for _, tc := range cases {
		if got := blocksSpanned(tc.w, tc.n); got != tc.blocks {
			t.Errorf("blocksSpanned(%d,%d) = %d, want %d", tc.w, tc.n, got, tc.blocks)
		}
	}
	if got := linesSpanned(0, 8); got != 1 {
		t.Errorf("linesSpanned(0,8) = %d, want 1", got)
	}
	if got := linesSpanned(7, 2); got != 2 {
		t.Errorf("linesSpanned(7,2) = %d, want 2", got)
	}
}

func TestSpanHelpersProperty(t *testing.T) {
	// Spanned counts must equal the size of the set of distinct block/line
	// indexes covered by the range.
	f := func(wRaw uint16, nRaw uint8) bool {
		w := int64(wRaw)
		n := int64(nRaw)
		distinct := func(unit int64) int64 {
			seen := map[int64]struct{}{}
			for i := int64(0); i < n; i++ {
				seen[(w+i)/unit] = struct{}{}
			}
			return int64(len(seen))
		}
		return blocksSpanned(w, n) == distinct(BlockWords) && linesSpanned(w, n) == distinct(CachelineWords)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHandleAccounting(t *testing.T) {
	d := newTestDevice(t, DefaultConfig(4096))
	h := d.NewHandle()

	h.ReadAccess(0, 32) // exactly one block
	h.ReadAccess(30, 4) // straddles two blocks
	s := h.Stats()
	if s.ReadAccesses != 2 || s.ReadWords != 36 || s.MediaBlockReads != 3 {
		t.Fatalf("read stats = %+v, want accesses=2 words=36 blocks=3", s)
	}

	h.WriteWords(512, []uint64{1, 2, 3})
	h.Flush(512, 3)
	h.Fence()
	s = h.Stats()
	if s.WriteAccesses != 1 || s.WriteWords != 3 {
		t.Fatalf("write stats = %+v, want accesses=1 words=3", s)
	}
	if s.Flushes != 1 || s.Fences != 1 {
		t.Fatalf("flush/fence stats = %+v, want 1/1", s)
	}
	if s.ModeledNanos == 0 {
		t.Fatal("modeled time did not accumulate")
	}
	for i := int64(0); i < 3; i++ {
		if got := d.Load(512 + i); got != uint64(i+1) {
			t.Fatalf("word %d = %d, want %d", 512+i, got, i+1)
		}
	}

	h.ResetStats()
	if h.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestReadWords(t *testing.T) {
	d := newTestDevice(t, DefaultConfig(1024))
	h := d.NewHandle()
	h.WriteWords(256, []uint64{10, 20, 30, 40})
	dst := make([]uint64, 4)
	h.ReadWords(256, dst)
	for i, want := range []uint64{10, 20, 30, 40} {
		if dst[i] != want {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want)
		}
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{ReadAccesses: 3, ReadWords: 12, MediaBlockReads: 4, WriteAccesses: 1, WriteWords: 2, Flushes: 5, Fences: 6, ModeledNanos: 700}
	b := Stats{ReadAccesses: 1, ReadWords: 4, MediaBlockReads: 1, WriteAccesses: 1, WriteWords: 1, Flushes: 2, Fences: 3, ModeledNanos: 200}
	var sum Stats
	sum.Add(a)
	sum.Add(b)
	if sum.ReadAccesses != 4 || sum.Flushes != 7 || sum.ModeledNanos != 900 {
		t.Fatalf("Add produced %+v", sum)
	}
	diff := sum.Sub(b)
	if diff != a {
		t.Fatalf("Sub produced %+v, want %+v", diff, a)
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{ReadWords: 4, MediaBlockReads: 1, WriteWords: 8, ModeledNanos: uint64(time.Microsecond)}
	if s.ReadBytes() != 32 || s.WriteBytes() != 64 || s.MediaReadBytes() != 256 {
		t.Fatalf("byte helpers wrong: %+v", s)
	}
	if amp := s.ReadAmplification(); amp != 8 {
		t.Fatalf("ReadAmplification = %v, want 8", amp)
	}
	if (Stats{}).ReadAmplification() != 0 {
		t.Fatal("zero stats should have zero amplification")
	}
	if s.Modeled() != time.Microsecond {
		t.Fatalf("Modeled = %v", s.Modeled())
	}
	if s.String() == "" {
		t.Fatal("String is empty")
	}
}

func TestMergeStats(t *testing.T) {
	d := newTestDevice(t, DefaultConfig(1024))
	h1, h2 := d.NewHandle(), d.NewHandle()
	h1.ReadAccess(0, 8)
	h2.ReadAccess(0, 8)
	h2.Fence()
	total := MergeStats([]*Handle{h1, h2})
	if total.ReadAccesses != 2 || total.Fences != 1 {
		t.Fatalf("MergeStats = %+v", total)
	}
}

func TestSaveLoadImage(t *testing.T) {
	d := newTestDevice(t, DefaultConfig(2048))
	h := d.NewHandle()
	h.WriteWords(1000, []uint64{11, 22, 33})
	h.Flush(1000, 3)
	d.SetRoot(h, 0, 1000)

	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatalf("SaveImage: %v", err)
	}
	img, err := ReadImage(&buf)
	if err != nil {
		t.Fatalf("ReadImage: %v", err)
	}
	d2, err := FromImage(DefaultConfig(2048), img)
	if err != nil {
		t.Fatalf("FromImage: %v", err)
	}
	if got := d2.Root(0); got != 1000 {
		t.Fatalf("restored root = %d, want 1000", got)
	}
	if got := d2.Load(1001); got != 22 {
		t.Fatalf("restored word = %d, want 22", got)
	}
}

func TestReadImageRejectsGarbage(t *testing.T) {
	if _, err := ReadImage(bytes.NewReader(make([]byte, 16))); err == nil {
		t.Fatal("ReadImage accepted zero magic")
	}
	if _, err := ReadImage(bytes.NewReader(nil)); err == nil {
		t.Fatal("ReadImage accepted empty input")
	}
}

func TestFromImageValidatesSuperblock(t *testing.T) {
	img := make([]uint64, 1024)
	if _, err := FromImage(DefaultConfig(1024), img); err == nil {
		t.Fatal("FromImage accepted an unformatted image")
	}
	if _, err := FromImage(DefaultConfig(2048), img); err == nil {
		t.Fatal("FromImage accepted a size mismatch")
	}
}

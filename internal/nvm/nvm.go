// Package nvm emulates an Intel Optane DC Persistent Memory (AEP) device in
// software.
//
// The emulation preserves the three AEP behaviours the HDNH paper's results
// depend on:
//
//  1. Access accounting at the granularities an AEP sees: 8-byte words for
//     program accesses, 64-byte cache lines for flushes, and 256-byte
//     "XPLine" media blocks for reads (the paper's read-amplification
//     argument). Counters are kept per Handle so concurrent workers never
//     share a cache line.
//  2. A latency/bandwidth model. In ModeEmulate every media block read,
//     cache-line flush, and fence costs a calibrated busy-wait, and reads and
//     writes draw from token buckets so the 1/3-read, 1/6-write bandwidth
//     ratio versus DRAM shows up as real stalls under concurrency.
//  3. Persistence semantics. In ModeStrict the device keeps a CPU-cache
//     overlay: stores land in the volatile view and only reach the persisted
//     image when flushed (CLWB) — or, on a crash, when the simulated cache
//     happens to evict them. Crash-consistency tests can therefore observe
//     every state a real power failure could produce.
//
// The device stores 64-bit words rather than bytes so that sync/atomic
// applies directly to the backing slice; all persistent structures in this
// repository are word-packed (see internal/kv).
package nvm

import (
	"fmt"
	"time"
)

// Fundamental device granularities, in words and bytes. A word is the unit
// of atomic access; a cache line is the unit of flushing; a block is the unit
// of media access on Optane (the "XPLine").
const (
	WordBytes      = 8
	CachelineBytes = 64
	CachelineWords = CachelineBytes / WordBytes
	BlockBytes     = 256
	BlockWords     = BlockBytes / WordBytes
)

// Mode selects how much machinery the device runs on each access.
type Mode int

const (
	// ModeModel counts accesses and accumulates modeled time, but performs
	// no delays and no persistence tracking. Fastest; the default for unit
	// tests and functional benchmarks.
	ModeModel Mode = iota
	// ModeEmulate additionally converts each media access into a calibrated
	// busy-wait and enforces read/write bandwidth token buckets. Used by the
	// throughput experiments so that NVM-access-heavy schemes pay real time.
	ModeEmulate
	// ModeStrict additionally tracks dirty cache lines against a separate
	// persisted image so tests can crash the device at arbitrary points.
	// Stores take a mutex; use it for correctness tests, not benchmarks.
	ModeStrict
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeModel:
		return "model"
	case ModeEmulate:
		return "emulate"
	case ModeStrict:
		return "strict"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes a device. The zero value is not valid; use DefaultConfig
// or EmulateConfig and adjust.
type Config struct {
	// Words is the device capacity in 8-byte words (includes the superblock).
	Words int64
	// Mode selects model/emulate/strict behaviour.
	Mode Mode

	// ReadLatency is charged per 256-byte media block touched by a read.
	// The Optane characterisation reports ~3x DRAM read latency; the default
	// emulate profile uses 300ns/block vs DRAM's effectively free access.
	ReadLatency time.Duration
	// WriteLatency is charged per cache line reaching the ADR domain, i.e.
	// per flushed line. Writes commit at the memory controller, so this is
	// similar to DRAM (default 100ns).
	WriteLatency time.Duration
	// FenceLatency is charged per Fence (SFENCE). Default 30ns.
	FenceLatency time.Duration

	// ReadBandwidth and WriteBandwidth, in bytes/second, bound sustained
	// throughput across all handles (0 = unlimited). AEP is ~1/3 DRAM read
	// bandwidth and ~1/6 DRAM write bandwidth.
	ReadBandwidth  int64
	WriteBandwidth int64

	// TrackWear enables per-block write counting (see WearStats). Costs
	// one atomic increment per flushed line.
	TrackWear bool

	// EvictProb is the probability, on a strict-mode crash, that a dirty
	// (unflushed) cache line was nonetheless written back by a cache
	// eviction before power was lost.
	EvictProb float64
	// Seed seeds the device RNG used for crash evictions.
	Seed uint64
}

// DefaultConfig returns a ModeModel configuration with the given capacity.
func DefaultConfig(words int64) Config {
	return Config{
		Words:        words,
		Mode:         ModeModel,
		ReadLatency:  300 * time.Nanosecond,
		WriteLatency: 100 * time.Nanosecond,
		FenceLatency: 30 * time.Nanosecond,
		EvictProb:    0.5,
		Seed:         1,
	}
}

// EmulateConfig returns a ModeEmulate configuration with the default Optane
// latency/bandwidth profile: 300ns per block read, 100ns per flushed line,
// 30ns per fence, 2 GB/s read and 1 GB/s write bandwidth. The absolute
// numbers matter less than their ratios; they reproduce the paper's "reads
// are the expensive operation" regime.
func EmulateConfig(words int64) Config {
	c := DefaultConfig(words)
	c.Mode = ModeEmulate
	c.ReadBandwidth = 2 << 30
	c.WriteBandwidth = 1 << 30
	return c
}

// StrictConfig returns a ModeStrict configuration for crash-consistency
// testing. Latency fields are kept but unused for delays.
func StrictConfig(words int64) Config {
	c := DefaultConfig(words)
	c.Mode = ModeStrict
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Words < SuperblockWords {
		return fmt.Errorf("nvm: capacity %d words is smaller than the %d-word superblock", c.Words, SuperblockWords)
	}
	if c.Words%BlockWords != 0 {
		return fmt.Errorf("nvm: capacity %d words is not a multiple of the %d-word block", c.Words, BlockWords)
	}
	if c.EvictProb < 0 || c.EvictProb > 1 {
		return fmt.Errorf("nvm: eviction probability %v outside [0,1]", c.EvictProb)
	}
	return nil
}

package nvm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// ErrNotStrict is returned by persistence-tracking operations when the device
// is not in ModeStrict.
var ErrNotStrict = errors.New("nvm: operation requires ModeStrict")

// Device is an emulated persistent-memory module. All program-visible data
// lives in words; in strict mode a separate persisted image tracks what has
// actually reached the ADR domain.
//
// Word-granular Load/Store/CAS are safe for concurrent use in model and
// emulate modes. Strict mode serialises stores with a mutex and is intended
// for single- or low-threaded correctness tests.
type Device struct {
	cfg   Config
	words []uint64

	readBW  *tokenBucket
	writeBW *tokenBucket

	allocMu sync.Mutex

	wear []uint64 // per-block flushed-line counts (nil unless TrackWear)

	// Strict-mode state.
	strictMu   sync.Mutex
	persisted  []uint64
	dirty      map[int64]struct{} // dirty cache-line indexes
	rngState   uint64
	crashAfter int64 // take a crash image when flush count reaches this (0 = disabled)
	flushCount int64
	crashImage []uint64

	// Global flush counter (all modes), for tests and reporting.
	totalFlushes atomic.Int64
}

// New creates a device, formats its superblock, and returns it.
func New(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		cfg:   cfg,
		words: make([]uint64, cfg.Words),
	}
	d.initBandwidth()
	if cfg.Mode == ModeStrict {
		d.persisted = make([]uint64, cfg.Words)
		d.dirty = make(map[int64]struct{})
		d.rngState = cfg.Seed | 1
	}
	if cfg.TrackWear {
		d.wear = make([]uint64, cfg.Words/BlockWords)
	}
	d.formatSuperblock()
	return d, nil
}

// FromImage creates a device whose contents are a previously persisted image
// (for example one produced by CrashImage or SaveImage). The image length
// must equal cfg.Words. The superblock is validated, not reformatted, so
// allocations and roots survive.
func FromImage(cfg Config, image []uint64) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if int64(len(image)) != cfg.Words {
		return nil, fmt.Errorf("nvm: image has %d words, config wants %d", len(image), cfg.Words)
	}
	d := &Device{
		cfg:   cfg,
		words: make([]uint64, cfg.Words),
	}
	copy(d.words, image)
	d.initBandwidth()
	if cfg.Mode == ModeStrict {
		d.persisted = make([]uint64, cfg.Words)
		copy(d.persisted, image)
		d.dirty = make(map[int64]struct{})
		d.rngState = cfg.Seed | 1
	}
	if cfg.TrackWear {
		d.wear = make([]uint64, cfg.Words/BlockWords)
	}
	if err := d.checkSuperblock(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Device) initBandwidth() {
	if d.cfg.Mode == ModeEmulate {
		if d.cfg.ReadBandwidth > 0 {
			d.readBW = newTokenBucket(d.cfg.ReadBandwidth)
		}
		if d.cfg.WriteBandwidth > 0 {
			d.writeBW = newTokenBucket(d.cfg.WriteBandwidth)
		}
	}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Words returns the device capacity in words.
func (d *Device) Words() int64 { return d.cfg.Words }

// Mode returns the device mode.
func (d *Device) Mode() Mode { return d.cfg.Mode }

// Load atomically reads the word at index w. It performs no accounting; use
// Handle.ReadAccess around groups of loads.
func (d *Device) Load(w int64) uint64 {
	return atomic.LoadUint64(&d.words[w])
}

// Store atomically writes the word at index w. In strict mode the containing
// cache line becomes dirty and will not survive a crash until flushed.
func (d *Device) Store(w int64, v uint64) {
	atomic.StoreUint64(&d.words[w], v)
	if d.cfg.Mode == ModeStrict {
		d.strictMu.Lock()
		d.dirty[w/CachelineWords] = struct{}{}
		d.strictMu.Unlock()
	}
}

// CAS atomically compares-and-swaps the word at index w.
func (d *Device) CAS(w int64, old, new uint64) bool {
	ok := atomic.CompareAndSwapUint64(&d.words[w], old, new)
	if ok && d.cfg.Mode == ModeStrict {
		d.strictMu.Lock()
		d.dirty[w/CachelineWords] = struct{}{}
		d.strictMu.Unlock()
	}
	return ok
}

// Add atomically adds delta to the word at index w and returns the new value.
func (d *Device) Add(w int64, delta uint64) uint64 {
	v := atomic.AddUint64(&d.words[w], delta)
	if d.cfg.Mode == ModeStrict {
		d.strictMu.Lock()
		d.dirty[w/CachelineWords] = struct{}{}
		d.strictMu.Unlock()
	}
	return v
}

// persistLines copies the cache lines covering [w, w+n) from the volatile
// view to the persisted image and clears their dirty marks. Called by
// Handle.Flush in strict mode.
func (d *Device) persistLines(w, n int64) {
	first := w / CachelineWords
	last := (w + n - 1) / CachelineWords
	d.strictMu.Lock()
	for line := first; line <= last; line++ {
		base := line * CachelineWords
		end := base + CachelineWords
		if end > d.cfg.Words {
			end = d.cfg.Words
		}
		for i := base; i < end; i++ {
			d.persisted[i] = atomic.LoadUint64(&d.words[i])
		}
		delete(d.dirty, line)
	}
	d.flushCount++
	if d.crashAfter > 0 && d.flushCount >= d.crashAfter && d.crashImage == nil {
		d.crashImage = d.snapshotLocked()
	}
	d.strictMu.Unlock()
}

// nextRand advances the strict-mode xorshift RNG.
func (d *Device) nextRand() uint64 {
	x := d.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	d.rngState = x
	return x
}

// snapshotLocked returns a copy of the persisted image with each currently
// dirty line independently written back with probability EvictProb,
// simulating cache evictions racing the power failure. Caller holds strictMu.
func (d *Device) snapshotLocked() []uint64 {
	img := make([]uint64, d.cfg.Words)
	copy(img, d.persisted)
	threshold := uint64(d.cfg.EvictProb * (1 << 32))
	for line := range d.dirty {
		if d.nextRand()&0xffffffff >= threshold {
			continue
		}
		base := line * CachelineWords
		end := base + CachelineWords
		if end > d.cfg.Words {
			end = d.cfg.Words
		}
		for i := base; i < end; i++ {
			img[i] = atomic.LoadUint64(&d.words[i])
		}
	}
	return img
}

// Crash simulates a power failure: unflushed lines are lost except for a
// random EvictProb fraction that the cache happened to write back. The
// device's volatile view is reset to the post-crash persisted image, as if
// the machine rebooted. Only valid in strict mode.
func (d *Device) Crash() error {
	if d.cfg.Mode != ModeStrict {
		return ErrNotStrict
	}
	d.strictMu.Lock()
	img := d.snapshotLocked()
	copy(d.persisted, img)
	for i := range d.words {
		atomic.StoreUint64(&d.words[i], img[i])
	}
	d.dirty = make(map[int64]struct{})
	d.strictMu.Unlock()
	return nil
}

// SetCrashAfterFlushes arms a crash point: when the n-th subsequent flush
// completes, the device records a crash image (persisted state plus random
// evictions) without interrupting execution. Retrieve it with CrashImage.
// Only valid in strict mode.
func (d *Device) SetCrashAfterFlushes(n int64) error {
	if d.cfg.Mode != ModeStrict {
		return ErrNotStrict
	}
	d.strictMu.Lock()
	d.crashAfter = d.flushCount + n
	d.crashImage = nil
	d.strictMu.Unlock()
	return nil
}

// CrashImage returns the armed crash image, or nil if the crash point has
// not been reached yet.
func (d *Device) CrashImage() []uint64 {
	d.strictMu.Lock()
	defer d.strictMu.Unlock()
	if d.crashImage == nil {
		return nil
	}
	img := make([]uint64, len(d.crashImage))
	copy(img, d.crashImage)
	return img
}

// PersistedImage returns a copy of the persisted image (strict mode), or of
// the live words (other modes, where every store is considered durable).
func (d *Device) PersistedImage() []uint64 {
	img := make([]uint64, d.cfg.Words)
	if d.cfg.Mode == ModeStrict {
		d.strictMu.Lock()
		copy(img, d.persisted)
		d.strictMu.Unlock()
		return img
	}
	for i := range img {
		img[i] = atomic.LoadUint64(&d.words[i])
	}
	return img
}

// DirtyLines reports how many cache lines are dirty (strict mode only).
func (d *Device) DirtyLines() int {
	if d.cfg.Mode != ModeStrict {
		return 0
	}
	d.strictMu.Lock()
	defer d.strictMu.Unlock()
	return len(d.dirty)
}

// TotalFlushes reports the number of Flush calls across all handles.
func (d *Device) TotalFlushes() int64 { return d.totalFlushes.Load() }

// PersistCalls returns how many strict-mode line write-back calls the
// device has absorbed — the granularity SetCrashAfterFlushes counts in.
// Unlike TotalFlushes it advances once per Flush or StageFlush call, not
// once per drained barrier, so crash sweeps built on it land between
// individual staged write-backs inside a group commit.
func (d *Device) PersistCalls() int64 {
	d.strictMu.Lock()
	defer d.strictMu.Unlock()
	return d.flushCount
}

const imageMagic = uint64(0x48444e48494d4721) // "HDNHIMG!"

// SaveImage writes the persisted image to w in a simple framed format.
func (d *Device) SaveImage(w io.Writer) error {
	img := d.PersistedImage()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], imageMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(img)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("nvm: writing image header: %w", err)
	}
	buf := make([]byte, 8*4096)
	for off := 0; off < len(img); off += 4096 {
		end := off + 4096
		if end > len(img) {
			end = len(img)
		}
		n := 0
		for _, v := range img[off:end] {
			binary.LittleEndian.PutUint64(buf[n:], v)
			n += 8
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return fmt.Errorf("nvm: writing image body: %w", err)
		}
	}
	return nil
}

// LoadImageFile reads an image previously written by SaveImage.
func LoadImageFile(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadImage(f)
}

// ReadImage reads a framed image from r.
func ReadImage(r io.Reader) ([]uint64, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("nvm: reading image header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:8]) != imageMagic {
		return nil, errors.New("nvm: bad image magic")
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	if n > (1 << 34) {
		return nil, fmt.Errorf("nvm: unreasonable image size %d words", n)
	}
	img := make([]uint64, n)
	buf := make([]byte, 8*4096)
	for off := uint64(0); off < n; {
		chunk := uint64(4096)
		if off+chunk > n {
			chunk = n - off
		}
		if _, err := io.ReadFull(r, buf[:8*chunk]); err != nil {
			return nil, fmt.Errorf("nvm: reading image body: %w", err)
		}
		for i := uint64(0); i < chunk; i++ {
			img[off+i] = binary.LittleEndian.Uint64(buf[8*i:])
		}
		off += chunk
	}
	return img, nil
}

package nvm

import (
	"sync/atomic"
	"time"
)

// tokenBucket enforces a sustained byte rate across concurrent handles.
// State is a single atomic word holding the (possibly negative) "paid until"
// timestamp in nanoseconds: each consumer advances it by bytes/rate and, if
// the new deadline is in the future, spins until real time catches up. This
// models a saturated memory channel — excess demand turns into stall time,
// which is exactly how bandwidth-starved NVM schemes lose throughput.
type tokenBucket struct {
	paidUntil atomic.Int64 // unix nanos
	nanosPerB float64
	_         [40]byte
}

func newTokenBucket(bytesPerSecond int64) *tokenBucket {
	tb := &tokenBucket{nanosPerB: float64(time.Second) / float64(bytesPerSecond)}
	tb.paidUntil.Store(time.Now().UnixNano())
	return tb
}

// consume charges n bytes and stalls if the channel is over-subscribed.
func (tb *tokenBucket) consume(n int64) {
	cost := int64(float64(n) * tb.nanosPerB)
	if cost <= 0 {
		return
	}
	now := time.Now().UnixNano()
	for {
		old := tb.paidUntil.Load()
		base := old
		if base < now-int64(time.Millisecond) {
			// The channel has been idle; don't bank more than 1ms of credit.
			base = now - int64(time.Millisecond)
		}
		if tb.paidUntil.CompareAndSwap(old, base+cost) {
			deadline := base + cost
			if deadline > now {
				spinWait(time.Duration(deadline - now))
			}
			return
		}
	}
}

package nvm

import "time"

// Handle is a per-worker view of a Device. Each goroutine that touches the
// device should own its own Handle: accounting counters are handle-local
// (padded, unshared) and are merged on demand, so hot paths never contend on
// shared statistics.
//
// Accounting is explicit and separate from data movement: call ReadAccess /
// WriteAccess / Flush / Fence around groups of Load/Store calls, mirroring
// how a persistent data structure reasons about cache lines and media blocks.
type Handle struct {
	dev *Device
	s   Stats

	emulate      bool
	readLatency  time.Duration
	writeLatency time.Duration
	fenceLatency time.Duration

	// Staged-flush state (see StageFlush/FlushBarrier): lines awaiting the
	// next barrier and the per-line bandwidth drain cost.
	stagedLines int64
	drainPerLn  time.Duration
	_           [8]byte // keep handles from sharing cache lines in slices
}

// NewHandle returns a fresh handle on the device.
func (d *Device) NewHandle() *Handle {
	h := &Handle{
		dev:          d,
		emulate:      d.cfg.Mode == ModeEmulate,
		readLatency:  d.cfg.ReadLatency,
		writeLatency: d.cfg.WriteLatency,
		fenceLatency: d.cfg.FenceLatency,
	}
	if d.cfg.WriteBandwidth > 0 {
		h.drainPerLn = time.Duration(float64(time.Second) * CachelineBytes / float64(d.cfg.WriteBandwidth))
	}
	return h
}

// Device returns the underlying device.
func (h *Handle) Device() *Device { return h.dev }

// Stats returns a copy of the handle's accumulated statistics.
func (h *Handle) Stats() Stats { return h.s }

// ResetStats zeroes the handle's counters.
func (h *Handle) ResetStats() { h.s = Stats{} }

// blocksSpanned returns how many 256-byte media blocks the word range
// [w, w+n) touches.
func blocksSpanned(w, n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (w+n-1)/BlockWords - w/BlockWords + 1
}

// linesSpanned returns how many 64-byte cache lines the word range
// [w, w+n) touches.
func linesSpanned(w, n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (w+n-1)/CachelineWords - w/CachelineWords + 1
}

// ReadAccess accounts one logical read of n words starting at word w: the
// media blocks spanned are charged read latency and read bandwidth. Call it
// once per bucket/slot probe, before or after the constituent Loads.
func (h *Handle) ReadAccess(w, n int64) {
	blocks := blocksSpanned(w, n)
	h.s.ReadAccesses++
	h.s.ReadWords += uint64(n)
	h.s.MediaBlockReads += uint64(blocks)
	d := time.Duration(blocks) * h.readLatency
	h.s.ModeledNanos += uint64(d.Nanoseconds())
	if h.emulate {
		if h.dev.readBW != nil {
			h.dev.readBW.consume(blocks * BlockBytes)
		}
		spinWait(d)
	}
}

// WriteAccess accounts one logical write of n words starting at word w.
// Writes are cheap until flushed; only byte counters move here.
func (h *Handle) WriteAccess(w, n int64) {
	h.s.WriteAccesses++
	h.s.WriteWords += uint64(n)
}

// Flush persists the cache lines covering words [w, w+n): in strict mode the
// lines are copied to the persisted image; in emulate mode the write latency
// and write bandwidth are charged. Equivalent to CLWB on each line. A Fence
// is still required for ordering.
func (h *Handle) Flush(w, n int64) {
	lines := linesSpanned(w, n)
	h.s.Flushes += uint64(lines)
	h.dev.totalFlushes.Add(1)
	h.dev.recordWear(w, n)
	d := time.Duration(lines) * h.writeLatency
	h.s.ModeledNanos += uint64(d.Nanoseconds())
	switch h.dev.cfg.Mode {
	case ModeStrict:
		h.dev.persistLines(w, n)
	case ModeEmulate:
		if h.dev.writeBW != nil {
			h.dev.writeBW.consume(lines * CachelineBytes)
		}
		spinWait(d)
	}
}

// StageFlush queues the cache lines covering words [w, w+n) behind the next
// FlushBarrier: the CLWBs are issued (in strict mode the lines land in the
// persisted image immediately, exactly as Flush), but the latency cost is
// deferred. CLWB is non-blocking — a burst of line write-backs overlaps in
// the memory subsystem and is only waited on at the ordering point — so a
// group of staged lines costs one write latency plus the bandwidth drain at
// the barrier, not one serialized latency per line. Wear, line counters, and
// crash-point accounting are identical to Flush.
func (h *Handle) StageFlush(w, n int64) {
	lines := linesSpanned(w, n)
	h.s.Flushes += uint64(lines)
	h.dev.recordWear(w, n)
	h.stagedLines += lines
	if h.dev.cfg.Mode == ModeStrict {
		h.dev.persistLines(w, n)
	}
}

// FlushBarrier drains every line staged since the previous barrier: one
// write latency (the first CLWB's completion the subsequent fence waits on)
// plus the bandwidth cost of the whole burst. A no-op when nothing is
// staged. A Fence is still required for ordering, as after Flush.
func (h *Handle) FlushBarrier() {
	lines := h.stagedLines
	if lines == 0 {
		return
	}
	h.stagedLines = 0
	h.dev.totalFlushes.Add(1)
	d := h.writeLatency + time.Duration(lines)*h.drainPerLn
	h.s.ModeledNanos += uint64(d.Nanoseconds())
	if h.emulate {
		if h.dev.writeBW != nil {
			h.dev.writeBW.consume(lines * CachelineBytes)
		}
		spinWait(h.writeLatency)
	}
}

// Fence accounts an SFENCE ordering point.
func (h *Handle) Fence() {
	h.s.Fences++
	h.s.ModeledNanos += uint64(h.fenceLatency.Nanoseconds())
	if h.emulate {
		spinWait(h.fenceLatency)
	}
}

// Load reads one word with no accounting (see ReadAccess).
func (h *Handle) Load(w int64) uint64 { return h.dev.Load(w) }

// Store writes one word with no accounting (see WriteAccess/Flush).
func (h *Handle) Store(w int64, v uint64) { h.dev.Store(w, v) }

// CAS compares-and-swaps one word.
func (h *Handle) CAS(w int64, old, new uint64) bool { return h.dev.CAS(w, old, new) }

// ReadWords performs an accounted read of n words into dst.
func (h *Handle) ReadWords(w int64, dst []uint64) {
	h.ReadAccess(w, int64(len(dst)))
	for i := range dst {
		dst[i] = h.dev.Load(w + int64(i))
	}
}

// WriteWords performs an accounted write of src at word w (not yet flushed).
func (h *Handle) WriteWords(w int64, src []uint64) {
	h.WriteAccess(w, int64(len(src)))
	for i, v := range src {
		h.dev.Store(w+int64(i), v)
	}
}

// StorePersist stores one word, flushes its line, and fences: the canonical
// 8-byte atomic durable write used for commit records and metadata.
func (h *Handle) StorePersist(w int64, v uint64) {
	h.dev.Store(w, v)
	h.WriteAccess(w, 1)
	h.Flush(w, 1)
	h.Fence()
}

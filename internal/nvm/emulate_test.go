package nvm

import (
	"testing"
	"time"
)

func TestEmulateModeDelaysReads(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	cfg := EmulateConfig(4096)
	cfg.ReadLatency = 20 * time.Microsecond // large enough to measure
	cfg.ReadBandwidth = 0
	cfg.WriteBandwidth = 0
	d := newTestDevice(t, cfg)
	h := d.NewHandle()

	start := time.Now()
	const reads = 20
	for i := 0; i < reads; i++ {
		h.ReadAccess(0, 8)
	}
	elapsed := time.Since(start)
	if want := reads * cfg.ReadLatency / 2; elapsed < want {
		t.Fatalf("20 emulated reads took %v, want at least %v", elapsed, want)
	}
}

func TestEmulateModeBandwidthThrottles(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	cfg := EmulateConfig(1 << 16)
	cfg.ReadLatency = 0
	cfg.WriteLatency = 0
	cfg.FenceLatency = 0
	cfg.ReadBandwidth = 32 << 20 // 32 MB/s: 1024 block reads = 256KB = ~8ms
	d := newTestDevice(t, cfg)
	h := d.NewHandle()

	start := time.Now()
	for i := 0; i < 1024; i++ {
		h.ReadAccess(0, BlockWords)
	}
	elapsed := time.Since(start)
	if elapsed < 4*time.Millisecond {
		t.Fatalf("1024 block reads at 32MB/s took %v, want >= 4ms", elapsed)
	}
}

func TestModelModeDoesNotDelay(t *testing.T) {
	cfg := DefaultConfig(4096)
	cfg.ReadLatency = time.Second // would be catastrophic if actually waited
	d := newTestDevice(t, cfg)
	h := d.NewHandle()
	start := time.Now()
	for i := 0; i < 1000; i++ {
		h.ReadAccess(0, 8)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("model mode spent %v on 1000 reads", elapsed)
	}
	if h.Stats().ModeledNanos == 0 {
		t.Fatal("model mode must still accumulate modeled time")
	}
}

func TestSpinWaitZeroReturnsImmediately(t *testing.T) {
	start := time.Now()
	spinWait(0)
	spinWait(-time.Second)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("spinWait(<=0) waited")
	}
}

func TestTokenBucketIdleCreditIsBounded(t *testing.T) {
	tb := newTokenBucket(1 << 30)
	time.Sleep(5 * time.Millisecond) // idle: credit must cap at ~1ms
	start := time.Now()
	tb.consume(4 << 20) // 4MB at 1GB/s ≈ 4ms of cost, ~1ms credit
	if time.Since(start) < time.Millisecond {
		t.Skip("scheduling noise; consume returned unexpectedly fast")
	}
}

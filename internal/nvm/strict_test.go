package nvm

import "testing"

func TestStrictFlushPersists(t *testing.T) {
	d := newTestDevice(t, StrictConfig(1024))
	h := d.NewHandle()

	d.Store(200, 42)
	if got := d.PersistedImage()[200]; got != 0 {
		t.Fatalf("unflushed store reached persisted image: %d", got)
	}
	if d.DirtyLines() != 1 {
		t.Fatalf("DirtyLines = %d, want 1", d.DirtyLines())
	}
	h.Flush(200, 1)
	h.Fence()
	if got := d.PersistedImage()[200]; got != 42 {
		t.Fatalf("flushed store missing from persisted image: %d", got)
	}
	if d.DirtyLines() != 0 {
		t.Fatalf("DirtyLines after flush = %d, want 0", d.DirtyLines())
	}
}

func TestStrictCrashLosesUnflushedLines(t *testing.T) {
	cfg := StrictConfig(1024)
	cfg.EvictProb = 0 // nothing survives by accident
	d := newTestDevice(t, cfg)
	h := d.NewHandle()

	d.Store(300, 1)
	h.Flush(300, 1)
	d.Store(400, 2) // never flushed

	if err := d.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if got := d.Load(300); got != 1 {
		t.Fatalf("flushed word lost on crash: %d", got)
	}
	if got := d.Load(400); got != 0 {
		t.Fatalf("unflushed word survived crash with EvictProb=0: %d", got)
	}
	if d.DirtyLines() != 0 {
		t.Fatal("crash left dirty lines")
	}
}

func TestStrictCrashEvictionsAreLineGranular(t *testing.T) {
	cfg := StrictConfig(1024)
	cfg.EvictProb = 1 // every dirty line is evicted (written back)
	d := newTestDevice(t, cfg)

	d.Store(512, 7)
	d.Store(513, 8) // same cache line
	if err := d.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if d.Load(512) != 7 || d.Load(513) != 8 {
		t.Fatal("with EvictProb=1 the whole dirty line must survive")
	}
}

func TestStrictCrashIsProbabilistic(t *testing.T) {
	cfg := StrictConfig(64 * 1024)
	cfg.EvictProb = 0.5
	d := newTestDevice(t, cfg)

	// Dirty 512 distinct cache lines.
	const lines = 512
	for i := 0; i < lines; i++ {
		d.Store(int64(SuperblockWords+i*CachelineWords), 1)
	}
	if err := d.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	survived := 0
	for i := 0; i < lines; i++ {
		if d.Load(int64(SuperblockWords+i*CachelineWords)) == 1 {
			survived++
		}
	}
	// With p=0.5 over 512 trials, [128, 384] is a >8-sigma window.
	if survived < lines/4 || survived > lines*3/4 {
		t.Fatalf("survived %d of %d lines; eviction sampling looks broken", survived, lines)
	}
}

func TestCrashRequiresStrictMode(t *testing.T) {
	d := newTestDevice(t, DefaultConfig(1024))
	if err := d.Crash(); err != ErrNotStrict {
		t.Fatalf("Crash on model device: %v, want ErrNotStrict", err)
	}
	if err := d.SetCrashAfterFlushes(1); err != ErrNotStrict {
		t.Fatalf("SetCrashAfterFlushes on model device: %v, want ErrNotStrict", err)
	}
}

func TestCrashAfterFlushesImage(t *testing.T) {
	cfg := StrictConfig(1024)
	cfg.EvictProb = 0
	d := newTestDevice(t, cfg)
	h := d.NewHandle()

	if err := d.SetCrashAfterFlushes(2); err != nil {
		t.Fatalf("SetCrashAfterFlushes: %v", err)
	}
	if d.CrashImage() != nil {
		t.Fatal("crash image appeared before any flush")
	}

	d.Store(256, 1)
	h.Flush(256, 1) // flush #1
	if d.CrashImage() != nil {
		t.Fatal("crash image appeared one flush early")
	}
	d.Store(257, 2)
	h.Flush(257, 1) // flush #2 — crash point
	d.Store(258, 3)
	h.Flush(258, 1) // after the crash point; must not be in the image

	img := d.CrashImage()
	if img == nil {
		t.Fatal("crash image missing after crash point")
	}
	if img[256] != 1 || img[257] != 2 {
		t.Fatalf("crash image lost pre-crash flushes: %d %d", img[256], img[257])
	}
	if img[258] != 0 {
		t.Fatalf("crash image contains post-crash flush: %d", img[258])
	}

	// The image must boot as a device.
	d2, err := FromImage(cfg, img)
	if err != nil {
		t.Fatalf("FromImage(crash image): %v", err)
	}
	if d2.Load(257) != 2 {
		t.Fatal("restored device lost data")
	}
}

func TestStrictPersistedImageIsACopy(t *testing.T) {
	d := newTestDevice(t, StrictConfig(1024))
	h := d.NewHandle()
	d.Store(100, 5)
	h.Flush(100, 1)
	img := d.PersistedImage()
	img[100] = 99
	if got := d.PersistedImage()[100]; got != 5 {
		t.Fatalf("PersistedImage aliases device state: %d", got)
	}
}

package nvm

import (
	"errors"
	"sync"
	"testing"
)

func TestAllocBasic(t *testing.T) {
	d := newTestDevice(t, DefaultConfig(4096))
	h := d.NewHandle()

	off1, err := d.Alloc(h, 100, 0)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if off1 != SuperblockWords {
		t.Fatalf("first allocation at %d, want %d", off1, SuperblockWords)
	}
	off2, err := d.Alloc(h, 10, BlockWords)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if off2%BlockWords != 0 {
		t.Fatalf("aligned allocation at %d is not block-aligned", off2)
	}
	if off2 < off1+100 {
		t.Fatalf("allocations overlap: %d then %d", off1, off2)
	}
}

func TestAllocErrors(t *testing.T) {
	d := newTestDevice(t, DefaultConfig(1024))
	h := d.NewHandle()
	if _, err := d.Alloc(h, 0, 0); err == nil {
		t.Fatal("Alloc(0) succeeded")
	}
	if _, err := d.Alloc(h, 8, 3); err == nil {
		t.Fatal("Alloc with non-power-of-two alignment succeeded")
	}
	if _, err := d.Alloc(h, 1<<20, 0); !errors.Is(err, ErrOutOfSpace) {
		t.Fatalf("oversized Alloc: %v, want ErrOutOfSpace", err)
	}
}

func TestAllocExhaustion(t *testing.T) {
	d := newTestDevice(t, DefaultConfig(1024))
	h := d.NewHandle()
	total := int64(0)
	for {
		_, err := d.Alloc(h, 128, 0)
		if err != nil {
			if !errors.Is(err, ErrOutOfSpace) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		total += 128
	}
	if total == 0 || total > 1024-SuperblockWords {
		t.Fatalf("allocated %d words from a %d-word device", total, 1024)
	}
	if free := d.FreeWords(); free >= 128 {
		t.Fatalf("FreeWords = %d after exhaustion", free)
	}
}

func TestAllocConcurrent(t *testing.T) {
	d := newTestDevice(t, DefaultConfig(1<<16))
	const goroutines = 8
	const each = 20
	offsets := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := d.NewHandle()
			for i := 0; i < each; i++ {
				off, err := d.Alloc(h, 16, 0)
				if err != nil {
					t.Errorf("Alloc: %v", err)
					return
				}
				offsets[g] = append(offsets[g], off)
			}
		}(g)
	}
	wg.Wait()
	seen := map[int64]bool{}
	for _, offs := range offsets {
		for _, off := range offs {
			if seen[off] {
				t.Fatalf("offset %d allocated twice", off)
			}
			seen[off] = true
		}
	}
	if len(seen) != goroutines*each {
		t.Fatalf("got %d allocations, want %d", len(seen), goroutines*each)
	}
}

func TestAllocHeadSurvivesImage(t *testing.T) {
	cfg := StrictConfig(4096)
	d := newTestDevice(t, cfg)
	h := d.NewHandle()
	off1, err := d.Alloc(h, 64, 0)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	d2, err := FromImage(cfg, d.PersistedImage())
	if err != nil {
		t.Fatalf("FromImage: %v", err)
	}
	h2 := d2.NewHandle()
	off2, err := d2.Alloc(h2, 64, 0)
	if err != nil {
		t.Fatalf("Alloc after restore: %v", err)
	}
	if off2 < off1+64 {
		t.Fatalf("restored allocator reused space: first %d, second %d", off1, off2)
	}
}

func TestRoots(t *testing.T) {
	d := newTestDevice(t, DefaultConfig(1024))
	h := d.NewHandle()
	d.SetRoot(h, 3, 777)
	if got := d.Root(3); got != 777 {
		t.Fatalf("Root(3) = %d, want 777", got)
	}
	if got := d.Root(4); got != 0 {
		t.Fatalf("Root(4) = %d, want 0", got)
	}
	mustPanic(t, func() { d.SetRoot(h, NumRoots, 1) })
	mustPanic(t, func() { d.Root(-1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

package nvm

import (
	"strings"
	"testing"
)

func TestWearDisabledByDefault(t *testing.T) {
	d := newTestDevice(t, DefaultConfig(4096))
	if d.WearEnabled() {
		t.Fatal("wear tracking on without TrackWear")
	}
	if st := d.WearStats(); st.TotalLineWrites != 0 {
		t.Fatalf("stats on disabled tracking: %+v", st)
	}
	if d.HottestBlocks(5) != nil {
		t.Fatal("HottestBlocks on disabled tracking")
	}
}

func TestWearCountsFlushes(t *testing.T) {
	cfg := DefaultConfig(4096)
	cfg.TrackWear = true
	d := newTestDevice(t, cfg)
	h := d.NewHandle()

	// Note: formatting the superblock happens before handles exist, so the
	// counts below are exactly ours.
	base := d.WearStats().TotalLineWrites

	// Hammer block 4 (words 128..159), touch block 8 once.
	for i := 0; i < 10; i++ {
		h.Flush(128, 8)
	}
	h.Flush(256, 1)

	st := d.WearStats()
	if st.TotalLineWrites-base != 11 {
		t.Fatalf("TotalLineWrites delta = %d, want 11", st.TotalLineWrites-base)
	}
	if st.MaxBlock != 4 || st.MaxBlockWrites != 10 {
		t.Fatalf("hottest = block %d x%d, want block 4 x10", st.MaxBlock, st.MaxBlockWrites)
	}
	if st.SkewRatio <= 1 {
		t.Fatalf("SkewRatio = %v for a skewed write pattern", st.SkewRatio)
	}
	if !strings.Contains(st.String(), "block 4") {
		t.Fatalf("String() = %q", st.String())
	}

	hot := d.HottestBlocks(2)
	if len(hot) != 2 || hot[0].Block != 4 || hot[0].Writes != 10 {
		t.Fatalf("HottestBlocks = %+v", hot)
	}
}

func TestWearSpansBlocks(t *testing.T) {
	cfg := DefaultConfig(4096)
	cfg.TrackWear = true
	d := newTestDevice(t, cfg)
	h := d.NewHandle()
	before := d.WearStats().TouchedBlocks
	h.Flush(BlockWords-1, 2) // straddles blocks 0 and 1
	if got := d.WearStats().TouchedBlocks - before; got < 1 {
		t.Fatalf("straddling flush touched %d new blocks", got)
	}
	if d.wear[0] == 0 || d.wear[1] == 0 {
		t.Fatal("straddling flush missed one side")
	}
}

func TestWearEmptyStats(t *testing.T) {
	cfg := DefaultConfig(4096)
	cfg.TrackWear = true
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Formatting wrote nothing through handles (direct stores), so stats
	// may be zero; the call must not divide by zero either way.
	_ = d.WearStats()
}

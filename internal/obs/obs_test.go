package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"hdnh/internal/nvm"
)

func TestCountersSumAcrossHandles(t *testing.T) {
	m := New(Config{SampleEvery: 1})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Handle()
			for i := 0; i < per; i++ {
				h.Op(OpGet, OutNVTHit, time.Time{})
				h.Probe(2, 3, 1)
				h.Contended()
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if got := s.Ops[OpGet][OutNVTHit]; got != workers*per {
		t.Fatalf("nvt_hit count = %d, want %d", got, workers*per)
	}
	if s.LookupRescans != 2*workers*per || s.NVTProbes != 3*workers*per || s.Spins != workers*per {
		t.Fatalf("probe counters wrong: %+v", s)
	}
	if s.Contended != workers*per {
		t.Fatalf("contended = %d", s.Contended)
	}
}

func TestLatencySampling(t *testing.T) {
	m := New(Config{SampleEvery: 4})
	h := m.Handle()
	sampled := 0
	for i := 0; i < 100; i++ {
		start := h.Start()
		if !start.IsZero() {
			sampled++
		}
		h.Op(OpGet, OutHotHit, start)
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 at 1/4", sampled)
	}
	s := m.Snapshot()
	if s.Ops[OpGet][OutHotHit] != 100 {
		t.Fatalf("counter must be exact, got %d", s.Ops[OpGet][OutHotHit])
	}
	if s.Latency[OpGet][OutHotHit].Sampled != 25 {
		t.Fatalf("latency sampled = %d, want 25", s.Latency[OpGet][OutHotHit].Sampled)
	}
}

func TestAtomicHistQuantiles(t *testing.T) {
	var a AtomicHist
	for i := int64(1); i <= 1000; i++ {
		a.Record(i * 1000) // 1µs .. 1ms
	}
	h := a.Snapshot()
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Percentile(50)
	// Bounded relative error: the histogram reports bucket upper bounds.
	if p50 < 450_000 || p50 > 600_000 {
		t.Fatalf("p50 = %d outside [450µs, 600µs]", p50)
	}
}

func TestSnapshotSub(t *testing.T) {
	m := New(Config{SampleEvery: 1})
	h := m.Handle()
	h.Op(OpInsert, OutOK, time.Time{})
	h.AddNVM(nvm.Stats{ReadWords: 10})
	base := m.Snapshot()
	h.Op(OpInsert, OutOK, time.Time{})
	h.Op(OpInsert, OutOK, time.Time{})
	h.AddNVM(nvm.Stats{ReadWords: 7})
	d := m.Snapshot().Sub(base)
	if d.Ops[OpInsert][OutOK] != 2 {
		t.Fatalf("delta insert ok = %d, want 2", d.Ops[OpInsert][OutOK])
	}
	if d.NVM.ReadWords != 7 {
		t.Fatalf("delta read words = %d, want 7", d.NVM.ReadWords)
	}
}

func TestHitRatio(t *testing.T) {
	m := New(Config{})
	h := m.Handle()
	for i := 0; i < 3; i++ {
		h.Op(OpGet, OutHotHit, time.Time{})
	}
	h.Op(OpGet, OutNVTHit, time.Time{})
	if r := m.Snapshot().HitRatio(); r != 0.75 {
		t.Fatalf("hit ratio = %g, want 0.75", r)
	}
}

func TestWritePromFormat(t *testing.T) {
	m := New(Config{SampleEvery: 1})
	h := m.Handle()
	start := h.Start()
	h.Op(OpGet, OutNVTHit, start)
	h.HotFill(true)
	h.WriteGroup(64, 2)
	rm := NewRESPMetrics()
	rm.Run(8)
	rm.WriteRun(8)
	snap := m.Snapshot()
	snap.Gauges = Gauges{Items: 5, Capacity: 100, LoadFactor: 0.05}
	snap.RESP = rm.Snapshot()
	var b bytes.Buffer
	if err := snap.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`hdnh_ops_total{op="get",outcome="nvt_hit"} 1`,
		`hdnh_ops_total{op="get",outcome="miss"} 0`, // canonical series emitted at zero
		`hdnh_hot_fills_rejected_total 1`,
		`hdnh_items 5`,
		"# TYPE hdnh_ops_total counter",
		"# TYPE hdnh_op_latency_nanoseconds summary",
		`hdnh_write_groups_total 1`,
		`hdnh_write_group_keys_total 64`,
		`hdnh_write_group_flushes_total 2`,
		"# TYPE hdnh_write_group_size summary",
		`hdnh_write_group_size_count 1`,
		`hdnh_resp_write_runs_total 1`,
		`hdnh_resp_write_run_ops_total 8`,
		"# TYPE hdnh_resp_write_run_length summary",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	m := New(Config{SampleEvery: 1})
	h := m.Handle()
	h.Op(OpUpdate, OutContended, time.Time{})
	h.Contended()
	var b bytes.Buffer
	if err := m.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(b.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	ops := decoded["ops"].(map[string]any)["update"].(map[string]any)
	if ops["contended"].(float64) != 1 {
		t.Fatalf("json ops.update.contended = %v", ops["contended"])
	}
	if decoded["contended"].(float64) != 1 {
		t.Fatalf("json contended = %v", decoded["contended"])
	}
}

func TestNopIsSafe(t *testing.T) {
	var r Recorder = Nop{}
	if !r.Start().IsZero() {
		t.Fatal("Nop.Start must return zero time")
	}
	r.Op(OpGet, OutMiss, time.Time{})
	r.Probe(1, 2, 3)
	r.Contended()
	r.GetRetry()
	r.HotFill(false)
	r.HotEvict()
	r.BGApply()
	r.Expansion(time.Second)
	r.AddNVM(nvm.Stats{})
}

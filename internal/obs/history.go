package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultHistoryPoints sizes the ring for ~10 minutes at 1s granularity.
const DefaultHistoryPoints = 600

// HistoryPoint is one interval's digest: counter deltas over the interval
// plus point-in-time gauges at its end. Small on purpose — the ring holds
// hundreds of these and /debug/history serialises them all.
type HistoryPoint struct {
	At         time.Time `json:"at"`
	IntervalMS int64     `json:"interval_ms"`

	// Op deltas over the interval.
	Gets    uint64 `json:"gets"`
	Inserts uint64 `json:"inserts"`
	Updates uint64 `json:"updates"`
	Deletes uint64 `json:"deletes"`
	// Backpressure outcomes (contended + full) across all ops.
	Errors uint64 `json:"errors"`
	// HotHits is the interval's hot-table Get hits.
	HotHits uint64 `json:"hot_hits"`

	// Device traffic deltas.
	NVMReadWords  uint64 `json:"nvm_read_words"`
	NVMWriteWords uint64 `json:"nvm_write_words"`

	// Log and resize activity deltas.
	VLogAppends   uint64 `json:"vlog_appends"`
	GCRelocations uint64 `json:"gc_relocations"`
	GCRecycles    uint64 `json:"gc_recycles"`
	Expansions    uint64 `json:"expansions"`

	// Gauges at interval end.
	Items            int64   `json:"items"`
	LoadFactor       float64 `json:"load_factor"`
	VLogFreeSegments int64   `json:"vlog_free_segments"`
	EpochSlotsLive   int64   `json:"epoch_slots_live"`
	RESPInFlight     int64   `json:"resp_in_flight"`

	// Shards carries the per-shard view when the store is sharded.
	Shards []ShardHistoryPoint `json:"shards,omitempty"`
}

// ShardHistoryPoint is one shard's slice of an interval. WearWords is the
// shard's NVM-wear proxy: the growth of its value-log used words over the
// interval, clamped at zero (segment recycling shrinks the gauge; only
// growth represents fresh media writes). It undercounts in-place index
// writes — NVM write counters are process-wide, not per-shard — but tracks
// exactly the append traffic that wears the log region.
type ShardHistoryPoint struct {
	Shard      int64   `json:"shard"`
	Items      int64   `json:"items"`
	LoadFactor float64 `json:"load_factor"`
	Resizing   int64   `json:"resizing"`
	WearWords  int64   `json:"wear_words"`
}

// History is a bounded ring of HistoryPoints built from periodic snapshots.
// Record each collection interval (serve runs a ~1s ticker); readers get a
// chronological copy. Safe for concurrent use.
type History struct {
	mu       sync.Mutex
	pts      []HistoryPoint
	next     int
	n        int
	havePrev bool
	prev     Snapshot
	prevAt   time.Time
	prevUsed map[int64]int64 // shard -> VLogUsedWords at previous record
}

// NewHistory builds a ring holding capacity points (DefaultHistoryPoints
// when <= 0).
func NewHistory(capacity int) *History {
	if capacity <= 0 {
		capacity = DefaultHistoryPoints
	}
	return &History{pts: make([]HistoryPoint, capacity), prevUsed: make(map[int64]int64)}
}

// Record folds a snapshot into the ring. The first call only seeds the
// baseline — deltas need two observations — so the ring gains its first
// point on the second call.
func (h *History) Record(s Snapshot, now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.havePrev {
		h.seed(s, now)
		return
	}
	d := s.Sub(h.prev)
	pt := HistoryPoint{
		At:               now,
		IntervalMS:       now.Sub(h.prevAt).Milliseconds(),
		Gets:             d.OpTotal(OpGet),
		Inserts:          d.OpTotal(OpInsert),
		Updates:          d.OpTotal(OpUpdate),
		Deletes:          d.OpTotal(OpDelete),
		HotHits:          d.Ops[OpGet][OutHotHit],
		NVMReadWords:     d.NVM.ReadWords,
		NVMWriteWords:    d.NVM.WriteWords,
		VLogAppends:      d.VLogAppends,
		GCRelocations:    d.GCRelocations,
		GCRecycles:       d.GCRecycles,
		Expansions:       d.Expansions,
		Items:            s.Gauges.Items,
		LoadFactor:       s.Gauges.LoadFactor,
		VLogFreeSegments: s.Gauges.VLogFreeSegments,
		EpochSlotsLive:   s.Gauges.EpochSlotsLive,
	}
	for op := Op(0); op < NumOps; op++ {
		pt.Errors += d.Ops[op][OutContended] + d.Ops[op][OutFull]
	}
	if s.RESP != nil {
		pt.RESPInFlight = s.RESP.InFlight
	}
	if len(s.Gauges.PerShard) > 0 {
		pt.Shards = make([]ShardHistoryPoint, 0, len(s.Gauges.PerShard))
		for _, sg := range s.Gauges.PerShard {
			wear := sg.VLogUsedWords - h.prevUsed[sg.Shard]
			if wear < 0 {
				wear = 0
			}
			pt.Shards = append(pt.Shards, ShardHistoryPoint{
				Shard:      sg.Shard,
				Items:      sg.Items,
				LoadFactor: sg.LoadFactor,
				Resizing:   sg.Resizing,
				WearWords:  wear,
			})
		}
	}
	h.pts[h.next] = pt
	h.next = (h.next + 1) % len(h.pts)
	if h.n < len(h.pts) {
		h.n++
	}
	h.seed(s, now)
}

// seed stores the delta baseline; caller holds h.mu.
func (h *History) seed(s Snapshot, now time.Time) {
	h.prev, h.prevAt, h.havePrev = s, now, true
	for k := range h.prevUsed {
		delete(h.prevUsed, k)
	}
	for _, sg := range s.Gauges.PerShard {
		h.prevUsed[sg.Shard] = sg.VLogUsedWords
	}
}

// Points returns the recorded points, oldest first.
func (h *History) Points() []HistoryPoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HistoryPoint, 0, h.n)
	start := h.next - h.n
	if start < 0 {
		start += len(h.pts)
	}
	for i := 0; i < h.n; i++ {
		out = append(out, h.pts[(start+i)%len(h.pts)])
	}
	return out
}

// WriteJSON renders the ring for /debug/history.
func (h *History) WriteJSON(w io.Writer) error {
	h.mu.Lock()
	capacity := len(h.pts)
	h.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Capacity int            `json:"capacity"`
		Points   []HistoryPoint `json:"points"`
	}{capacity, h.Points()})
}

// Package obs is the observability substrate for a running HDNH table: a
// zero-allocation, sharded-atomic metrics registry recording per-operation
// counters and latency histograms (split by hot-table hit / NVT hit / miss),
// retry and spin accounting for the optimistic-concurrency paths, hot-table
// fill/eviction traffic, and device-level NVM counters bridged from
// nvm.Stats.
//
// The recording surface is the Recorder interface. A disabled table uses
// Nop (every method is an empty body the compiler can see through); an
// enabled table hands each Session a *Handle bound to one counter shard, so
// concurrent sessions never contend on a counter cache line. Latency is
// sampled (Config.SampleEvery) because reading the clock twice per operation
// would dominate sub-microsecond hot-table hits; counters are exact.
//
// Snapshot produces a point-in-time copy suitable for deltas (Sub) and for
// exposition in Prometheus text or JSON form (see expose.go).
package obs

import (
	"sync/atomic"
	"time"

	"hdnh/internal/histogram"
	"hdnh/internal/nvm"
)

// Op enumerates the four session operations.
type Op uint8

const (
	OpGet Op = iota
	OpInsert
	OpUpdate
	OpDelete
	NumOps
)

// String returns the Prometheus label value for the op.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// Outcome enumerates how an operation completed. Gets use HotHit/NVTHit/Miss;
// writes use OK/Exists/NotFound/Full; every op can end Contended when its
// movement-hazard rescan budget exhausts (see docs/OBSERVABILITY.md). Error
// is the write outcome for an expansion that failed for a reason other than
// genuine capacity exhaustion — keeping internal faults distinguishable from
// a full table.
type Outcome uint8

const (
	OutHotHit Outcome = iota
	OutNVTHit
	OutMiss
	OutOK
	OutExists
	OutNotFound
	OutFull
	OutContended
	OutError
	// OutConflict is a conditional update (UpdateIf) that found the key
	// bound to an unexpected value and aborted — the GC's losing side of a
	// race with a foreground writer.
	OutConflict
	NumOutcomes
)

// String returns the Prometheus label value for the outcome.
func (o Outcome) String() string {
	switch o {
	case OutHotHit:
		return "hot_hit"
	case OutNVTHit:
		return "nvt_hit"
	case OutMiss:
		return "miss"
	case OutOK:
		return "ok"
	case OutExists:
		return "exists"
	case OutNotFound:
		return "not_found"
	case OutFull:
		return "full"
	case OutContended:
		return "contended"
	case OutError:
		return "error"
	case OutConflict:
		return "conflict"
	default:
		return "unknown"
	}
}

// Recorder is the instrumentation surface the core hot paths call. It is an
// interface so a disabled table compiles the accounting out to Nop's empty
// bodies; the enabled implementation is *Handle.
type Recorder interface {
	// Start returns the op start time when this operation is latency-sampled,
	// or the zero time otherwise. Callers pass the result to Op unchanged.
	Start() time.Time
	// Op records one completed operation, and its latency when start is
	// non-zero.
	Op(op Op, out Outcome, start time.Time)
	// Probe records one NVT walk: rescan passes beyond the first, accounted
	// slot reads, and waitUnlocked spin iterations.
	Probe(rescans, probes, spins int64)
	// Contended records one retry-budget exhaustion event.
	Contended()
	// GetRetry records one capped-backoff retry round inside Get.
	GetRetry()
	// HotFill records a search-path cache fill, rejected when the OCF
	// validation turned it away.
	HotFill(rejected bool)
	// HotEvict records one hot-table replacement (RAFL or LRU victim).
	HotEvict()
	// BGApply records one request applied by a background writer.
	BGApply()
	// Expansion records one completed table expansion and its end-to-end
	// duration (swap through drain completion).
	Expansion(d time.Duration)
	// ExpansionSwap records the exclusive-lock window of an incremental
	// expansion — the stall every foreground operation actually observes.
	ExpansionSwap(d time.Duration)
	// DrainChunk records one rehashed drain chunk: buckets covered, records
	// moved, and the chunk's shared-lock residency (the per-chunk stall
	// histogram).
	DrainChunk(buckets, moved int64, d time.Duration)
	// DrainHelp records a foreground writer pitching in on the drain.
	DrainHelp()
	// VLogAppend records one user value-log append of the given total
	// record words (GC relocation copies go to GCRelocate instead, so
	// write amplification is their ratio).
	VLogAppend(words int64)
	// WriteGroup records one grouped write commit: how many keys committed
	// together and how many flush runs they took (1 when the whole group
	// fit one contiguous segment run).
	WriteGroup(keys, runs int64)
	// GCRelocate records one live record the value-log GC copied out of a
	// victim segment, with its total record words.
	GCRelocate(words int64)
	// GCRaced records a GC relocation whose conditional index rewrite lost
	// to a racing user write — the copy became instant garbage.
	GCRaced()
	// GCRecycle records one value-log segment recycled to the free list.
	GCRecycle()
	// AddNVM merges a device-traffic delta bridged from nvm.Stats.
	AddNVM(delta nvm.Stats)
}

// Nop is the disabled Recorder.
type Nop struct{}

var _ Recorder = Nop{}

func (Nop) Start() time.Time                       { return time.Time{} }
func (Nop) Op(Op, Outcome, time.Time)              {}
func (Nop) Probe(int64, int64, int64)              {}
func (Nop) Contended()                             {}
func (Nop) GetRetry()                              {}
func (Nop) HotFill(bool)                           {}
func (Nop) HotEvict()                              {}
func (Nop) BGApply()                               {}
func (Nop) Expansion(time.Duration)                {}
func (Nop) ExpansionSwap(time.Duration)            {}
func (Nop) DrainChunk(int64, int64, time.Duration) {}
func (Nop) DrainHelp()                             {}
func (Nop) VLogAppend(int64)                       {}
func (Nop) WriteGroup(int64, int64)                {}
func (Nop) GCRelocate(int64)                       {}
func (Nop) GCRaced()                               {}
func (Nop) GCRecycle()                             {}
func (Nop) AddNVM(nvm.Stats)                       {}

// shardCount bounds counter contention: handles are dealt shards round-robin,
// and a snapshot sums across all of them.
const shardCount = 64

// nvmFields indexes the bridged nvm.Stats counters inside a shard.
const (
	nvmReadAccesses = iota
	nvmReadWords
	nvmMediaBlockReads
	nvmWriteAccesses
	nvmWriteWords
	nvmFlushes
	nvmFences
	nvmModeledNanos
	nvmFields
)

// shard is one cache-padded slice of every counter.
type shard struct {
	ops [NumOps][NumOutcomes]atomic.Uint64

	lookupRescans  atomic.Uint64
	nvtProbes      atomic.Uint64
	spins          atomic.Uint64
	contended      atomic.Uint64
	getRetries     atomic.Uint64
	hotFills       atomic.Uint64
	hotFillsReject atomic.Uint64
	hotEvictions   atomic.Uint64
	bgApplies      atomic.Uint64
	expansions     atomic.Uint64
	expansionNanos atomic.Uint64

	expansionSwaps     atomic.Uint64
	expansionSwapNanos atomic.Uint64
	drainChunks        atomic.Uint64
	drainBuckets       atomic.Uint64
	drainMoved         atomic.Uint64
	drainHelps         atomic.Uint64

	writeGroups     atomic.Uint64
	writeGroupKeys  atomic.Uint64
	writeGroupFlush atomic.Uint64

	vlogAppends      atomic.Uint64
	vlogAppendWords  atomic.Uint64
	gcRelocations    atomic.Uint64
	gcRelocatedWords atomic.Uint64
	gcRaced          atomic.Uint64
	gcRecycles       atomic.Uint64

	nvm [nvmFields]atomic.Uint64

	_ [64]byte // keep neighbouring shards off one cache line
}

// Config tunes a Metrics registry. The zero value picks defaults.
type Config struct {
	// SampleEvery latency-samples one in N operations per handle; 1 samples
	// everything, 0 picks DefaultSampleEvery. Counters are always exact.
	SampleEvery uint64
}

// DefaultSampleEvery keeps the two clock reads a sampled op costs off the
// common path: at 1/64 the accounting-mode overhead stays within noise while
// percentiles converge within seconds under realistic op rates.
const DefaultSampleEvery = 64

// Metrics is the registry. Create one with New, hand it to core.Options, and
// read it with Snapshot. All methods are safe for concurrent use.
type Metrics struct {
	sampleEvery uint64
	seq         atomic.Uint64 // round-robin shard dealer

	shards [shardCount]shard
	lat    [NumOps][NumOutcomes]AtomicHist
	// drainLat is the per-chunk stall histogram: how long each drain chunk
	// held the shared resize lock.
	drainLat AtomicHist
	// groupSize is the keys-per-group histogram for grouped write commits
	// (unit-agnostic, like the RESP run-length histogram).
	groupSize AtomicHist
}

// New builds a Metrics registry.
func New(cfg Config) *Metrics {
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	return &Metrics{sampleEvery: cfg.SampleEvery}
}

// Handle returns a Recorder bound to one shard. Each Session (and each
// background writer) should own its own handle; a Handle's sampling counter
// is not safe for concurrent use.
func (m *Metrics) Handle() *Handle {
	return &Handle{m: m, sh: &m.shards[m.seq.Add(1)%shardCount]}
}

// Handle is the enabled Recorder: counters go to the handle's shard, latency
// to the registry's shared atomic histograms.
type Handle struct {
	m  *Metrics
	sh *shard
	n  uint64 // ops seen, drives sampling
}

var _ Recorder = (*Handle)(nil)

func (h *Handle) Start() time.Time {
	h.n++
	if h.n%h.m.sampleEvery != 0 {
		return time.Time{}
	}
	return time.Now()
}

func (h *Handle) Op(op Op, out Outcome, start time.Time) {
	h.sh.ops[op][out].Add(1)
	if !start.IsZero() {
		h.m.lat[op][out].Record(time.Since(start).Nanoseconds())
	}
}

func (h *Handle) Probe(rescans, probes, spins int64) {
	if rescans > 0 {
		h.sh.lookupRescans.Add(uint64(rescans))
	}
	if probes > 0 {
		h.sh.nvtProbes.Add(uint64(probes))
	}
	if spins > 0 {
		h.sh.spins.Add(uint64(spins))
	}
}

func (h *Handle) Contended() { h.sh.contended.Add(1) }
func (h *Handle) GetRetry()  { h.sh.getRetries.Add(1) }
func (h *Handle) HotEvict()  { h.sh.hotEvictions.Add(1) }
func (h *Handle) BGApply()   { h.sh.bgApplies.Add(1) }

func (h *Handle) HotFill(rejected bool) {
	h.sh.hotFills.Add(1)
	if rejected {
		h.sh.hotFillsReject.Add(1)
	}
}

func (h *Handle) Expansion(d time.Duration) {
	h.sh.expansions.Add(1)
	h.sh.expansionNanos.Add(uint64(d.Nanoseconds()))
}

func (h *Handle) ExpansionSwap(d time.Duration) {
	h.sh.expansionSwaps.Add(1)
	h.sh.expansionSwapNanos.Add(uint64(d.Nanoseconds()))
}

func (h *Handle) DrainChunk(buckets, moved int64, d time.Duration) {
	h.sh.drainChunks.Add(1)
	h.sh.drainBuckets.Add(uint64(buckets))
	h.sh.drainMoved.Add(uint64(moved))
	h.m.drainLat.Record(d.Nanoseconds())
}

func (h *Handle) DrainHelp() { h.sh.drainHelps.Add(1) }

func (h *Handle) WriteGroup(keys, runs int64) {
	h.sh.writeGroups.Add(1)
	h.sh.writeGroupKeys.Add(uint64(keys))
	h.sh.writeGroupFlush.Add(uint64(runs))
	h.m.groupSize.Record(keys)
}

func (h *Handle) VLogAppend(words int64) {
	h.sh.vlogAppends.Add(1)
	h.sh.vlogAppendWords.Add(uint64(words))
}

func (h *Handle) GCRelocate(words int64) {
	h.sh.gcRelocations.Add(1)
	h.sh.gcRelocatedWords.Add(uint64(words))
}

func (h *Handle) GCRaced()   { h.sh.gcRaced.Add(1) }
func (h *Handle) GCRecycle() { h.sh.gcRecycles.Add(1) }

func (h *Handle) AddNVM(delta nvm.Stats) {
	n := &h.sh.nvm
	n[nvmReadAccesses].Add(delta.ReadAccesses)
	n[nvmReadWords].Add(delta.ReadWords)
	n[nvmMediaBlockReads].Add(delta.MediaBlockReads)
	n[nvmWriteAccesses].Add(delta.WriteAccesses)
	n[nvmWriteWords].Add(delta.WriteWords)
	n[nvmFlushes].Add(delta.Flushes)
	n[nvmFences].Add(delta.Fences)
	n[nvmModeledNanos].Add(delta.ModeledNanos)
}

// AtomicHist is a concurrently recordable histogram with the geometry of
// internal/histogram: per-bucket atomic counts plus a value sum, converted
// back to a *histogram.Histogram for percentile queries at snapshot time.
type AtomicHist struct {
	counts [histogram.Buckets]atomic.Uint64
	sum    atomic.Uint64
}

// Record adds one nanosecond observation.
func (a *AtomicHist) Record(v int64) {
	a.counts[histogram.BucketOf(v)].Add(1)
	if v > 0 {
		a.sum.Add(uint64(v))
	}
}

// Snapshot converts the current counts into a queryable Histogram.
func (a *AtomicHist) Snapshot() *histogram.Histogram {
	var counts [histogram.Buckets]uint64
	for i := range counts {
		counts[i] = a.counts[i].Load()
	}
	return histogram.FromCounts(counts[:], a.sum.Load())
}

package obs

import (
	"sync/atomic"
	"time"
)

// RESPCmd enumerates the commands the RESP listener serves; Other covers
// unknown commands (answered with -ERR, counted so abuse is visible).
type RESPCmd uint8

const (
	RESPGet RESPCmd = iota
	RESPSet
	RESPDel
	RESPMGet
	RESPMSet
	RESPPing
	RESPInfo
	RESPQuit
	RESPOther
	NumRESPCmds
)

// String returns the Prometheus label value for the command.
func (c RESPCmd) String() string {
	switch c {
	case RESPGet:
		return "get"
	case RESPSet:
		return "set"
	case RESPDel:
		return "del"
	case RESPMGet:
		return "mget"
	case RESPMSet:
		return "mset"
	case RESPPing:
		return "ping"
	case RESPInfo:
		return "info"
	case RESPQuit:
		return "quit"
	default:
		return "other"
	}
}

// RESPMetrics instruments the binary wire listener: connection lifecycle,
// the in-flight pipeline depth, how well the executor coalesces commands
// into batch runs, and the served per-command latency (parse to reply
// written — queueing included, which is what a pipelined client observes).
//
// Unlike the table counters these are plain shared atomics, not per-session
// shards: every command already crosses a syscall boundary, so one
// uncontended-in-practice cache line per counter is noise there.
type RESPMetrics struct {
	connsTotal atomic.Uint64
	connsOpen  atomic.Int64
	inFlight   atomic.Int64
	protoErrs  atomic.Uint64

	cmds    [NumRESPCmds]atomic.Uint64
	cmdErrs [NumRESPCmds]atomic.Uint64
	lat     [NumRESPCmds]AtomicHist

	runs    atomic.Uint64
	runOps  atomic.Uint64
	flushes atomic.Uint64
	runLen  AtomicHist // run length in ops (the histogram is unit-agnostic)

	// Write runs get their own shape series: a coalesced MSET burst's size
	// is what the group-commit path turns into one persist barrier, so
	// hdnhtop can show write batch shape separately from reads.
	writeRuns   atomic.Uint64
	writeRunOps atomic.Uint64
	writeRunLen AtomicHist
}

// NewRESPMetrics returns a fresh registry for one listener.
func NewRESPMetrics() *RESPMetrics { return &RESPMetrics{} }

// ConnOpened records an accepted connection. Nil-safe, like every method.
func (m *RESPMetrics) ConnOpened() {
	if m == nil {
		return
	}
	m.connsTotal.Add(1)
	m.connsOpen.Add(1)
}

// ConnClosed records a connection teardown.
func (m *RESPMetrics) ConnClosed() {
	if m == nil {
		return
	}
	m.connsOpen.Add(-1)
}

// Enqueued records a parsed command entering the in-flight queue.
func (m *RESPMetrics) Enqueued() {
	if m == nil {
		return
	}
	m.inFlight.Add(1)
}

// Dropped records n enqueued commands discarded unserved (connection torn
// down with a pipeline still in flight); it only rebalances the gauge.
func (m *RESPMetrics) Dropped(n int) {
	if m == nil || n == 0 {
		return
	}
	m.inFlight.Add(int64(-n))
}

// Served records one command's reply hitting the write buffer: the command,
// whether it answered with an error reply, and its served latency (enqueue
// to reply written).
func (m *RESPMetrics) Served(cmd RESPCmd, isErr bool, d time.Duration) {
	if m == nil {
		return
	}
	m.inFlight.Add(-1)
	m.cmds[cmd].Add(1)
	if isErr {
		m.cmdErrs[cmd].Add(1)
	}
	m.lat[cmd].Record(d.Nanoseconds())
}

// Run records one coalesced batch run of n same-kind commands.
func (m *RESPMetrics) Run(n int) {
	if m == nil {
		return
	}
	m.runs.Add(1)
	m.runOps.Add(uint64(n))
	m.runLen.Record(int64(n))
}

// WriteRun records one coalesced run of n write commands (MSET fan-in,
// multi-key DEL, or a pipelined SET/DEL burst the executor grouped). Call
// it alongside Run for write-kind runs.
func (m *RESPMetrics) WriteRun(n int) {
	if m == nil {
		return
	}
	m.writeRuns.Add(1)
	m.writeRunOps.Add(uint64(n))
	m.writeRunLen.Record(int64(n))
}

// Flush records one buffered-writer flush (at most one syscall per drained
// pipeline burst is the whole point; flushes/runs tells you if that holds).
func (m *RESPMetrics) Flush() {
	if m == nil {
		return
	}
	m.flushes.Add(1)
}

// ProtoError records a framing-level protocol error (connection is closed).
func (m *RESPMetrics) ProtoError() {
	if m == nil {
		return
	}
	m.protoErrs.Add(1)
}

// RESPSnapshot is a point-in-time copy of a listener's counters.
type RESPSnapshot struct {
	ConnsTotal  uint64 `json:"connections_total"`
	ConnsOpen   int64  `json:"connections_open"`
	InFlight    int64  `json:"in_flight"`
	ProtoErrors uint64 `json:"proto_errors"`

	Commands      map[string]uint64      `json:"commands"`
	CommandErrors map[string]uint64      `json:"command_errors,omitempty"`
	Latency       map[string]LatencyStat `json:"latency_ns,omitempty"`

	Runs      uint64      `json:"runs"`
	RunOps    uint64      `json:"run_ops"`
	Flushes   uint64      `json:"flushes"`
	RunLength LatencyStat `json:"run_length"` // ops per run, not nanoseconds

	WriteRuns      uint64      `json:"write_runs"`
	WriteRunOps    uint64      `json:"write_run_ops"`
	WriteRunLength LatencyStat `json:"write_run_length"` // ops per write run

	// internal positional copies the Prometheus writer iterates.
	cmds    [NumRESPCmds]uint64
	cmdErrs [NumRESPCmds]uint64
	lat     [NumRESPCmds]LatencyStat
}

// Snapshot copies the counters. Nil-safe: a nil registry returns nil, which
// the expositions render as "no RESP listener".
func (m *RESPMetrics) Snapshot() *RESPSnapshot {
	if m == nil {
		return nil
	}
	s := &RESPSnapshot{
		ConnsTotal:  m.connsTotal.Load(),
		ConnsOpen:   m.connsOpen.Load(),
		InFlight:    m.inFlight.Load(),
		ProtoErrors: m.protoErrs.Load(),
		Commands:    map[string]uint64{},
		Runs:        m.runs.Load(),
		RunOps:      m.runOps.Load(),
		Flushes:     m.flushes.Load(),
		WriteRuns:   m.writeRuns.Load(),
		WriteRunOps: m.writeRunOps.Load(),
	}
	for c := RESPCmd(0); c < NumRESPCmds; c++ {
		s.cmds[c] = m.cmds[c].Load()
		s.cmdErrs[c] = m.cmdErrs[c].Load()
		s.Commands[c.String()] = s.cmds[c]
		if s.cmdErrs[c] != 0 {
			if s.CommandErrors == nil {
				s.CommandErrors = map[string]uint64{}
			}
			s.CommandErrors[c.String()] = s.cmdErrs[c]
		}
		if h := m.lat[c].Snapshot(); h.Count() > 0 {
			ls := LatencyStat{
				Sampled: h.Count(),
				MeanNs:  h.Mean(),
				P50Ns:   h.Percentile(50),
				P99Ns:   h.Percentile(99),
				P999Ns:  h.Percentile(99.9),
				MaxNs:   h.Max(),
			}
			s.lat[c] = ls
			if s.Latency == nil {
				s.Latency = map[string]LatencyStat{}
			}
			s.Latency[c.String()] = ls
		}
	}
	if h := m.runLen.Snapshot(); h.Count() > 0 {
		s.RunLength = LatencyStat{
			Sampled: h.Count(),
			MeanNs:  h.Mean(),
			P50Ns:   h.Percentile(50),
			P99Ns:   h.Percentile(99),
			P999Ns:  h.Percentile(99.9),
			MaxNs:   h.Max(),
		}
	}
	if h := m.writeRunLen.Snapshot(); h.Count() > 0 {
		s.WriteRunLength = LatencyStat{
			Sampled: h.Count(),
			MeanNs:  h.Mean(),
			P50Ns:   h.Percentile(50),
			P99Ns:   h.Percentile(99),
			P999Ns:  h.Percentile(99.9),
			MaxNs:   h.Max(),
		}
	}
	return s
}

package obs

import "hdnh/internal/nvm"

// LatencyStat summarises one (op, outcome) latency histogram. Counts reflect
// only the sampled operations (see Config.SampleEvery); the quantiles are
// upper bounds with the bounded relative error internal/histogram provides.
type LatencyStat struct {
	Sampled uint64  `json:"sampled"`
	MeanNs  float64 `json:"mean_ns"`
	P50Ns   int64   `json:"p50_ns"`
	P99Ns   int64   `json:"p99_ns"`
	P999Ns  int64   `json:"p999_ns"`
	MaxNs   int64   `json:"max_ns"`
}

// Gauges are point-in-time table-shape readings a Snapshot carries alongside
// the monotonic counters; core.Table.MetricsSnapshot fills them.
type Gauges struct {
	Items           int64   `json:"items"`
	Capacity        int64   `json:"capacity"`
	LoadFactor      float64 `json:"load_factor"`
	Generation      uint64  `json:"generation"`
	HotEntries      int64   `json:"hot_entries"`
	HotCapacity     int64   `json:"hot_capacity"`
	HotFillRatio    float64 `json:"hot_fill_ratio"`
	DeviceWords     int64   `json:"device_words"`
	DeviceWordsUsed int64   `json:"device_words_used"`
	DeviceFlushes   int64   `json:"device_flushes"`
	// Resizing is 1 while an incremental rehash is in flight;
	// DrainBucketsRemaining is its not-yet-durably-complete bucket count.
	Resizing              int64 `json:"resizing"`
	DrainBucketsRemaining int64 `json:"drain_buckets_remaining"`
	// Value-log shape (zero unless the store runs one — see bigkv):
	// segment counts plus the live/used word totals whose ratio is the
	// log's garbage fraction.
	VLogSegments     int64 `json:"vlog_segments"`
	VLogFreeSegments int64 `json:"vlog_free_segments"`
	VLogLiveWords    int64 `json:"vlog_live_words"`
	VLogUsedWords    int64 `json:"vlog_used_words"`
	// EpochSlotsLive counts epoch slots owned by sessions not yet closed —
	// each live slot can pin a resize grace period, so sustained growth
	// means leaked sessions (bigkv.Store.EpochSlotsLive fills it).
	EpochSlotsLive int64 `json:"epoch_slots_live"`
	// Shards is the hash-router shard count (0 for an unsharded table) and
	// PerShard the per-shard shape breakdown the aggregate fields above sum
	// over. Counters are shared across shards; only shape is per-shard.
	Shards   int64         `json:"shards,omitempty"`
	PerShard []ShardGauges `json:"per_shard,omitempty"`
}

// ShardGauges is one router shard's shape reading: which shard is resizing,
// how its load is balanced, and (for bigkv) its value log's fill — the
// per-shard visibility that makes a stuck shard diagnosable.
type ShardGauges struct {
	Shard                 int64   `json:"shard"`
	Items                 int64   `json:"items"`
	Capacity              int64   `json:"capacity"`
	LoadFactor            float64 `json:"load_factor"`
	Generation            uint64  `json:"generation"`
	Resizing              int64   `json:"resizing"`
	DrainBucketsRemaining int64   `json:"drain_buckets_remaining"`
	HotEntries            int64   `json:"hot_entries"`
	VLogSegments          int64   `json:"vlog_segments,omitempty"`
	VLogFreeSegments      int64   `json:"vlog_free_segments,omitempty"`
	VLogLiveWords         int64   `json:"vlog_live_words,omitempty"`
	VLogUsedWords         int64   `json:"vlog_used_words,omitempty"`
}

// Snapshot is a point-in-time copy of every counter in a Metrics registry.
type Snapshot struct {
	// Ops counts completed operations per (op, outcome).
	Ops [NumOps][NumOutcomes]uint64
	// Latency summarises sampled latency per (op, outcome).
	Latency [NumOps][NumOutcomes]LatencyStat

	// LookupRescans counts movement-hazard rescan passes beyond each walk's
	// first; NVTProbes counts accounted slot reads those walks issued.
	LookupRescans uint64
	NVTProbes     uint64
	// Spins counts waitUnlocked backoff iterations; Contended counts
	// retry-budget exhaustions; GetRetries counts Get's backoff rounds.
	Spins      uint64
	Contended  uint64
	GetRetries uint64

	// Hot-table traffic: search-path fills (and how many the OCF validation
	// rejected) and replacement evictions.
	HotFills         uint64
	HotFillsRejected uint64
	HotEvictions     uint64
	// BGApplies counts requests the background writer pool applied.
	BGApplies uint64

	// Expansions counts completed resizes and ExpansionNanos their total
	// end-to-end duration (swap through drain completion).
	Expansions     uint64
	ExpansionNanos uint64

	// ExpansionSwaps counts incremental-resize pointer swaps and
	// ExpansionSwapNanos their total exclusive-lock residency — the stall
	// foreground operations actually observe per doubling.
	ExpansionSwaps     uint64
	ExpansionSwapNanos uint64
	// DrainChunks / DrainBuckets / DrainRecordsMoved describe incremental
	// rehash progress; DrainHelps counts foreground writers that pitched in.
	DrainChunks       uint64
	DrainBuckets      uint64
	DrainRecordsMoved uint64
	DrainHelps        uint64
	// DrainChunkLatency summarises how long each drain chunk held the shared
	// resize lock (every chunk is recorded, not sampled).
	DrainChunkLatency LatencyStat

	// Grouped write commits: how many groups, how many keys they carried,
	// how many flush runs they took (runs/groups near 1 means batches
	// rarely straddle segment boundaries), and the keys-per-group shape.
	WriteGroups       uint64
	WriteGroupKeys    uint64
	WriteGroupFlushes uint64
	WriteGroupSize    LatencyStat

	// Value-log traffic: user appends vs GC relocation copies (their word
	// ratio is the GC write amplification), rewrites the GC lost to racing
	// user writes, and segments recycled.
	VLogAppends      uint64
	VLogAppendWords  uint64
	GCRelocations    uint64
	GCRelocatedWords uint64
	GCRaced          uint64
	GCRecycles       uint64

	// NVM aggregates the device traffic sessions published via SyncObs.
	NVM nvm.Stats

	// Gauges are table-shape readings taken with the snapshot.
	Gauges Gauges

	// RESP, when non-nil, carries the binary wire listener's counters so
	// the served-protocol series ride the same exposition as the table's
	// (hdnhserve fills it when -resp is set).
	RESP *RESPSnapshot
}

// Snapshot sums every shard into a consistent-enough point-in-time copy
// (individual counters are atomic; the set is not globally serialised, the
// usual monitoring trade).
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	for i := range m.shards {
		sh := &m.shards[i]
		for op := Op(0); op < NumOps; op++ {
			for out := Outcome(0); out < NumOutcomes; out++ {
				s.Ops[op][out] += sh.ops[op][out].Load()
			}
		}
		s.LookupRescans += sh.lookupRescans.Load()
		s.NVTProbes += sh.nvtProbes.Load()
		s.Spins += sh.spins.Load()
		s.Contended += sh.contended.Load()
		s.GetRetries += sh.getRetries.Load()
		s.HotFills += sh.hotFills.Load()
		s.HotFillsRejected += sh.hotFillsReject.Load()
		s.HotEvictions += sh.hotEvictions.Load()
		s.BGApplies += sh.bgApplies.Load()
		s.Expansions += sh.expansions.Load()
		s.ExpansionNanos += sh.expansionNanos.Load()
		s.ExpansionSwaps += sh.expansionSwaps.Load()
		s.ExpansionSwapNanos += sh.expansionSwapNanos.Load()
		s.DrainChunks += sh.drainChunks.Load()
		s.DrainBuckets += sh.drainBuckets.Load()
		s.DrainRecordsMoved += sh.drainMoved.Load()
		s.DrainHelps += sh.drainHelps.Load()
		s.WriteGroups += sh.writeGroups.Load()
		s.WriteGroupKeys += sh.writeGroupKeys.Load()
		s.WriteGroupFlushes += sh.writeGroupFlush.Load()
		s.VLogAppends += sh.vlogAppends.Load()
		s.VLogAppendWords += sh.vlogAppendWords.Load()
		s.GCRelocations += sh.gcRelocations.Load()
		s.GCRelocatedWords += sh.gcRelocatedWords.Load()
		s.GCRaced += sh.gcRaced.Load()
		s.GCRecycles += sh.gcRecycles.Load()
		s.NVM.Add(nvm.Stats{
			ReadAccesses:    sh.nvm[nvmReadAccesses].Load(),
			ReadWords:       sh.nvm[nvmReadWords].Load(),
			MediaBlockReads: sh.nvm[nvmMediaBlockReads].Load(),
			WriteAccesses:   sh.nvm[nvmWriteAccesses].Load(),
			WriteWords:      sh.nvm[nvmWriteWords].Load(),
			Flushes:         sh.nvm[nvmFlushes].Load(),
			Fences:          sh.nvm[nvmFences].Load(),
			ModeledNanos:    sh.nvm[nvmModeledNanos].Load(),
		})
	}
	for op := Op(0); op < NumOps; op++ {
		for out := Outcome(0); out < NumOutcomes; out++ {
			h := m.lat[op][out].Snapshot()
			if h.Count() == 0 {
				continue
			}
			s.Latency[op][out] = LatencyStat{
				Sampled: h.Count(),
				MeanNs:  h.Mean(),
				P50Ns:   h.Percentile(50),
				P99Ns:   h.Percentile(99),
				P999Ns:  h.Percentile(99.9),
				MaxNs:   h.Max(),
			}
		}
	}
	if h := m.drainLat.Snapshot(); h.Count() > 0 {
		s.DrainChunkLatency = LatencyStat{
			Sampled: h.Count(),
			MeanNs:  h.Mean(),
			P50Ns:   h.Percentile(50),
			P99Ns:   h.Percentile(99),
			P999Ns:  h.Percentile(99.9),
			MaxNs:   h.Max(),
		}
	}
	if h := m.groupSize.Snapshot(); h.Count() > 0 {
		s.WriteGroupSize = LatencyStat{
			Sampled: h.Count(),
			MeanNs:  h.Mean(),
			P50Ns:   h.Percentile(50),
			P99Ns:   h.Percentile(99),
			P999Ns:  h.Percentile(99.9),
			MaxNs:   h.Max(),
		}
	}
	return s
}

// Sub returns the counter deltas s minus base, for interval monitoring.
// Latency stats and gauges are not differences; the receiver's (current)
// values are kept.
func (s Snapshot) Sub(base Snapshot) Snapshot {
	d := s
	for op := Op(0); op < NumOps; op++ {
		for out := Outcome(0); out < NumOutcomes; out++ {
			d.Ops[op][out] -= base.Ops[op][out]
		}
	}
	d.LookupRescans -= base.LookupRescans
	d.NVTProbes -= base.NVTProbes
	d.Spins -= base.Spins
	d.Contended -= base.Contended
	d.GetRetries -= base.GetRetries
	d.HotFills -= base.HotFills
	d.HotFillsRejected -= base.HotFillsRejected
	d.HotEvictions -= base.HotEvictions
	d.BGApplies -= base.BGApplies
	d.Expansions -= base.Expansions
	d.ExpansionNanos -= base.ExpansionNanos
	d.ExpansionSwaps -= base.ExpansionSwaps
	d.ExpansionSwapNanos -= base.ExpansionSwapNanos
	d.DrainChunks -= base.DrainChunks
	d.DrainBuckets -= base.DrainBuckets
	d.DrainRecordsMoved -= base.DrainRecordsMoved
	d.DrainHelps -= base.DrainHelps
	d.WriteGroups -= base.WriteGroups
	d.WriteGroupKeys -= base.WriteGroupKeys
	d.WriteGroupFlushes -= base.WriteGroupFlushes
	d.VLogAppends -= base.VLogAppends
	d.VLogAppendWords -= base.VLogAppendWords
	d.GCRelocations -= base.GCRelocations
	d.GCRelocatedWords -= base.GCRelocatedWords
	d.GCRaced -= base.GCRaced
	d.GCRecycles -= base.GCRecycles
	d.NVM = s.NVM.Sub(base.NVM)
	return d
}

// GCWriteAmplification returns total log words written per user-appended
// word: 1 means the GC copied nothing, 2 means every user word was copied
// once. 0 when no user appends happened.
func (s Snapshot) GCWriteAmplification() float64 {
	if s.VLogAppendWords == 0 {
		return 0
	}
	return float64(s.VLogAppendWords+s.GCRelocatedWords) / float64(s.VLogAppendWords)
}

// OpTotal sums one op's count across all outcomes.
func (s Snapshot) OpTotal(op Op) uint64 {
	var n uint64
	for out := Outcome(0); out < NumOutcomes; out++ {
		n += s.Ops[op][out]
	}
	return n
}

// HitRatio returns hot-table hits over all completed Gets, the paper's
// headline cache metric; 0 when no Gets happened.
func (s Snapshot) HitRatio() float64 {
	total := s.OpTotal(OpGet)
	if total == 0 {
		return 0
	}
	return float64(s.Ops[OpGet][OutHotHit]) / float64(total)
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// outcomesFor lists the outcomes an op can legitimately end with; the
// Prometheus exposition emits these series even at zero so dashboards get
// stable series sets, and any other nonzero combination defensively.
func outcomesFor(op Op) []Outcome {
	switch op {
	case OpGet:
		return []Outcome{OutHotHit, OutNVTHit, OutMiss, OutContended}
	case OpInsert:
		return []Outcome{OutOK, OutExists, OutFull, OutContended, OutError}
	case OpUpdate:
		return []Outcome{OutOK, OutNotFound, OutFull, OutContended, OutError, OutConflict}
	case OpDelete:
		return []Outcome{OutOK, OutNotFound, OutContended}
	default:
		return nil
	}
}

// WriteProm renders the snapshot in the Prometheus text exposition format
// (version 0.0.4). Metric names and meanings are documented in
// docs/OBSERVABILITY.md.
func (s Snapshot) WriteProm(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# HELP hdnh_ops_total Completed operations by op and outcome.\n")
	p("# TYPE hdnh_ops_total counter\n")
	for op := Op(0); op < NumOps; op++ {
		canonical := outcomesFor(op)
		emitted := make(map[Outcome]bool, len(canonical))
		for _, out := range canonical {
			p("hdnh_ops_total{op=%q,outcome=%q} %d\n", op.String(), out.String(), s.Ops[op][out])
			emitted[out] = true
		}
		for out := Outcome(0); out < NumOutcomes; out++ {
			if !emitted[out] && s.Ops[op][out] != 0 {
				p("hdnh_ops_total{op=%q,outcome=%q} %d\n", op.String(), out.String(), s.Ops[op][out])
			}
		}
	}

	p("# HELP hdnh_op_latency_nanoseconds Sampled operation latency quantiles.\n")
	p("# TYPE hdnh_op_latency_nanoseconds summary\n")
	for op := Op(0); op < NumOps; op++ {
		for out := Outcome(0); out < NumOutcomes; out++ {
			l := s.Latency[op][out]
			if l.Sampled == 0 {
				continue
			}
			lbl := fmt.Sprintf("op=%q,outcome=%q", op.String(), out.String())
			p("hdnh_op_latency_nanoseconds{%s,quantile=\"0.5\"} %d\n", lbl, l.P50Ns)
			p("hdnh_op_latency_nanoseconds{%s,quantile=\"0.99\"} %d\n", lbl, l.P99Ns)
			p("hdnh_op_latency_nanoseconds{%s,quantile=\"0.999\"} %d\n", lbl, l.P999Ns)
			p("hdnh_op_latency_nanoseconds_sum{%s} %.0f\n", lbl, l.MeanNs*float64(l.Sampled))
			p("hdnh_op_latency_nanoseconds_count{%s} %d\n", lbl, l.Sampled)
		}
	}

	counter := func(name, help string, v uint64) {
		p("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("hdnh_lookup_rescans_total", "Movement-hazard rescan passes beyond each NVT walk's first.", s.LookupRescans)
	counter("hdnh_nvt_probe_reads_total", "Accounted NVT slot reads issued by lookups.", s.NVTProbes)
	counter("hdnh_lock_spins_total", "waitUnlocked backoff iterations on locked OCF words.", s.Spins)
	counter("hdnh_contended_total", "Lookup retry-budget exhaustions (would have been silent false misses).", s.Contended)
	counter("hdnh_get_retries_total", "Capped-backoff retry rounds inside Get after budget exhaustion.", s.GetRetries)
	counter("hdnh_hot_fills_total", "Search-path hot-table fill attempts.", s.HotFills)
	counter("hdnh_hot_fills_rejected_total", "Fills rejected by OCF validation (record moved or changed).", s.HotFillsRejected)
	counter("hdnh_hot_evictions_total", "Hot-table replacement evictions.", s.HotEvictions)
	counter("hdnh_bg_applies_total", "Requests applied by the background writer pool.", s.BGApplies)
	counter("hdnh_expansions_total", "Completed table expansions.", s.Expansions)
	counter("hdnh_expansion_nanoseconds_total", "Total time spent expanding (swap through drain completion).", s.ExpansionNanos)
	counter("hdnh_expansion_swaps_total", "Incremental-resize pointer swaps.", s.ExpansionSwaps)
	counter("hdnh_expansion_swap_nanoseconds_total", "Total exclusive-lock residency of resize pointer swaps.", s.ExpansionSwapNanos)
	counter("hdnh_drain_chunks_total", "Rehash chunks completed by the incremental drain.", s.DrainChunks)
	counter("hdnh_drain_buckets_total", "Buckets rehashed by the incremental drain.", s.DrainBuckets)
	counter("hdnh_drain_records_moved_total", "Records moved into the new structure by the incremental drain.", s.DrainRecordsMoved)
	counter("hdnh_drain_helps_total", "Drain chunks contributed by foreground writers.", s.DrainHelps)
	if l := s.DrainChunkLatency; l.Sampled > 0 {
		p("# HELP hdnh_drain_chunk_nanoseconds Shared-lock residency per drain chunk.\n")
		p("# TYPE hdnh_drain_chunk_nanoseconds summary\n")
		p("hdnh_drain_chunk_nanoseconds{quantile=\"0.5\"} %d\n", l.P50Ns)
		p("hdnh_drain_chunk_nanoseconds{quantile=\"0.99\"} %d\n", l.P99Ns)
		p("hdnh_drain_chunk_nanoseconds{quantile=\"0.999\"} %d\n", l.P999Ns)
		p("hdnh_drain_chunk_nanoseconds_sum %.0f\n", l.MeanNs*float64(l.Sampled))
		p("hdnh_drain_chunk_nanoseconds_count %d\n", l.Sampled)
	}

	counter("hdnh_write_groups_total", "Grouped write commits (batched puts/deletes committed as one group).", s.WriteGroups)
	counter("hdnh_write_group_keys_total", "Keys committed through grouped writes.", s.WriteGroupKeys)
	counter("hdnh_write_group_flushes_total", "Value-log flush runs grouped writes took (near groups_total means batches rarely straddle segments).", s.WriteGroupFlushes)
	if l := s.WriteGroupSize; l.Sampled > 0 {
		p("# HELP hdnh_write_group_size Keys per grouped write commit (a count, not a duration).\n")
		p("# TYPE hdnh_write_group_size summary\n")
		p("hdnh_write_group_size{quantile=\"0.5\"} %d\n", l.P50Ns)
		p("hdnh_write_group_size{quantile=\"0.99\"} %d\n", l.P99Ns)
		p("hdnh_write_group_size_sum %.0f\n", l.MeanNs*float64(l.Sampled))
		p("hdnh_write_group_size_count %d\n", l.Sampled)
	}

	counter("hdnh_vlog_appends_total", "User value-log record appends.", s.VLogAppends)
	counter("hdnh_vlog_append_words_total", "Words appended to the value log by users.", s.VLogAppendWords)
	counter("hdnh_gc_relocations_total", "Live records copied out of GC victim segments.", s.GCRelocations)
	counter("hdnh_gc_relocated_words_total", "Words the GC copied between segments.", s.GCRelocatedWords)
	counter("hdnh_gc_raced_total", "GC index rewrites lost to racing user writes.", s.GCRaced)
	counter("hdnh_gc_recycles_total", "Value-log segments recycled to the free list.", s.GCRecycles)

	counter("hdnh_nvm_read_accesses_total", "Bridged device logical reads.", s.NVM.ReadAccesses)
	counter("hdnh_nvm_read_words_total", "Bridged device words read.", s.NVM.ReadWords)
	counter("hdnh_nvm_media_block_reads_total", "Bridged device 256B media blocks read.", s.NVM.MediaBlockReads)
	counter("hdnh_nvm_write_accesses_total", "Bridged device logical writes.", s.NVM.WriteAccesses)
	counter("hdnh_nvm_write_words_total", "Bridged device words written.", s.NVM.WriteWords)
	counter("hdnh_nvm_flushes_total", "Bridged device cache-line flushes.", s.NVM.Flushes)
	counter("hdnh_nvm_fences_total", "Bridged device ordering fences.", s.NVM.Fences)

	gauge := func(name, help string, format string, v any) {
		p("# HELP %s %s\n# TYPE %s gauge\n%s "+format+"\n", name, help, name, name, v)
	}
	gauge("hdnh_items", "Live records.", "%d", s.Gauges.Items)
	gauge("hdnh_capacity_slots", "Total NVT slots.", "%d", s.Gauges.Capacity)
	gauge("hdnh_load_factor", "Items over capacity.", "%g", s.Gauges.LoadFactor)
	gauge("hdnh_generation", "Completed resize generation.", "%d", s.Gauges.Generation)
	gauge("hdnh_hot_entries", "Hot-table cached records.", "%d", s.Gauges.HotEntries)
	gauge("hdnh_hot_capacity_slots", "Hot-table slot capacity.", "%d", s.Gauges.HotCapacity)
	gauge("hdnh_hot_fill_ratio", "Hot entries over hot capacity.", "%g", s.Gauges.HotFillRatio)
	gauge("hdnh_hot_hit_ratio", "Hot-table hits over all Gets.", "%g", s.HitRatio())
	gauge("hdnh_device_words", "Device capacity in words.", "%d", s.Gauges.DeviceWords)
	gauge("hdnh_device_words_used", "Device words bump-allocated.", "%d", s.Gauges.DeviceWordsUsed)
	gauge("hdnh_device_flushes", "Device-wide flush count.", "%d", s.Gauges.DeviceFlushes)
	gauge("hdnh_epoch_slots_live", "Epoch slots owned by unclosed sessions.", "%d", s.Gauges.EpochSlotsLive)
	gauge("hdnh_resizing", "1 while an incremental rehash is in flight.", "%d", s.Gauges.Resizing)
	gauge("hdnh_drain_buckets_remaining", "Drain-level buckets not yet durably rehashed.", "%d", s.Gauges.DrainBucketsRemaining)
	if s.Gauges.VLogSegments > 0 {
		gauge("hdnh_vlog_segments", "Value-log segment count.", "%d", s.Gauges.VLogSegments)
		gauge("hdnh_vlog_free_segments", "Value-log segments on the free list.", "%d", s.Gauges.VLogFreeSegments)
		gauge("hdnh_vlog_live_words", "Value-log words still referenced by the index.", "%d", s.Gauges.VLogLiveWords)
		gauge("hdnh_vlog_used_words", "Value-log words appended into sealed and active segments.", "%d", s.Gauges.VLogUsedWords)
		gauge("hdnh_gc_write_amplification", "Log words written per user-appended word.", "%g", s.GCWriteAmplification())
	}
	if len(s.Gauges.PerShard) > 0 {
		gauge("hdnh_shards", "Hash-router shard count.", "%d", s.Gauges.Shards)
		shardGauge := func(name, help string, pick func(ShardGauges) any) {
			p("# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for _, sh := range s.Gauges.PerShard {
				switch v := pick(sh).(type) {
				case int64:
					p("%s{shard=\"%d\"} %d\n", name, sh.Shard, v)
				case float64:
					p("%s{shard=\"%d\"} %g\n", name, sh.Shard, v)
				}
			}
		}
		shardGauge("hdnh_shard_items", "Live records per shard.", func(sh ShardGauges) any { return sh.Items })
		shardGauge("hdnh_shard_load_factor", "Items over capacity per shard.", func(sh ShardGauges) any { return sh.LoadFactor })
		shardGauge("hdnh_shard_resizing", "1 while the shard's incremental rehash is in flight.", func(sh ShardGauges) any { return sh.Resizing })
		shardGauge("hdnh_shard_drain_buckets_remaining", "Shard drain-level buckets not yet durably rehashed.", func(sh ShardGauges) any { return sh.DrainBucketsRemaining })
		shardGauge("hdnh_shard_hot_entries", "Hot-table cached records per shard.", func(sh ShardGauges) any { return sh.HotEntries })
		if s.Gauges.VLogSegments > 0 {
			shardGauge("hdnh_shard_vlog_free_segments", "Value-log segments on the shard's free list.", func(sh ShardGauges) any { return sh.VLogFreeSegments })
			shardGauge("hdnh_shard_vlog_live_words", "Value-log words the shard's index still references.", func(sh ShardGauges) any { return sh.VLogLiveWords })
		}
	}

	if r := s.RESP; r != nil {
		counter("hdnh_resp_connections_total", "RESP connections accepted.", r.ConnsTotal)
		gauge("hdnh_resp_connections_open", "RESP connections currently open.", "%d", r.ConnsOpen)
		gauge("hdnh_resp_inflight_commands", "Parsed RESP commands queued or executing (pipeline depth across connections).", "%d", r.InFlight)
		counter("hdnh_resp_proto_errors_total", "RESP framing errors (connection closed).", r.ProtoErrors)
		p("# HELP hdnh_resp_commands_total Served RESP commands by command.\n# TYPE hdnh_resp_commands_total counter\n")
		for c := RESPCmd(0); c < NumRESPCmds; c++ {
			p("hdnh_resp_commands_total{cmd=%q} %d\n", c.String(), r.cmds[c])
		}
		p("# HELP hdnh_resp_command_errors_total RESP commands answered with an error reply.\n# TYPE hdnh_resp_command_errors_total counter\n")
		for c := RESPCmd(0); c < NumRESPCmds; c++ {
			if r.cmdErrs[c] != 0 {
				p("hdnh_resp_command_errors_total{cmd=%q} %d\n", c.String(), r.cmdErrs[c])
			}
		}
		p("# HELP hdnh_resp_command_latency_nanoseconds Served RESP command latency (parse to reply written, queueing included).\n")
		p("# TYPE hdnh_resp_command_latency_nanoseconds summary\n")
		for c := RESPCmd(0); c < NumRESPCmds; c++ {
			l := r.lat[c]
			if l.Sampled == 0 {
				continue
			}
			lbl := fmt.Sprintf("cmd=%q", c.String())
			p("hdnh_resp_command_latency_nanoseconds{%s,quantile=\"0.5\"} %d\n", lbl, l.P50Ns)
			p("hdnh_resp_command_latency_nanoseconds{%s,quantile=\"0.99\"} %d\n", lbl, l.P99Ns)
			p("hdnh_resp_command_latency_nanoseconds{%s,quantile=\"0.999\"} %d\n", lbl, l.P999Ns)
			p("hdnh_resp_command_latency_nanoseconds_sum{%s} %.0f\n", lbl, l.MeanNs*float64(l.Sampled))
			p("hdnh_resp_command_latency_nanoseconds_count{%s} %d\n", lbl, l.Sampled)
		}
		counter("hdnh_resp_runs_total", "Coalesced batch runs executed by the RESP pipeline.", r.Runs)
		counter("hdnh_resp_run_ops_total", "Commands drained through coalesced batch runs.", r.RunOps)
		counter("hdnh_resp_flushes_total", "Reply-buffer flushes (one per drained pipeline burst).", r.Flushes)
		if l := r.RunLength; l.Sampled > 0 {
			p("# HELP hdnh_resp_run_length Commands per coalesced run (a length, not a duration).\n")
			p("# TYPE hdnh_resp_run_length summary\n")
			p("hdnh_resp_run_length{quantile=\"0.5\"} %d\n", l.P50Ns)
			p("hdnh_resp_run_length{quantile=\"0.99\"} %d\n", l.P99Ns)
			p("hdnh_resp_run_length_sum %.0f\n", l.MeanNs*float64(l.Sampled))
			p("hdnh_resp_run_length_count %d\n", l.Sampled)
		}
		counter("hdnh_resp_write_runs_total", "Coalesced write runs (MSET fan-in, multi-key DEL, grouped SET bursts).", r.WriteRuns)
		counter("hdnh_resp_write_run_ops_total", "Write commands drained through coalesced write runs.", r.WriteRunOps)
		if l := r.WriteRunLength; l.Sampled > 0 {
			p("# HELP hdnh_resp_write_run_length Write commands per coalesced write run (a length, not a duration).\n")
			p("# TYPE hdnh_resp_write_run_length summary\n")
			p("hdnh_resp_write_run_length{quantile=\"0.5\"} %d\n", l.P50Ns)
			p("hdnh_resp_write_run_length{quantile=\"0.99\"} %d\n", l.P99Ns)
			p("hdnh_resp_write_run_length_sum %.0f\n", l.MeanNs*float64(l.Sampled))
			p("hdnh_resp_write_run_length_count %d\n", l.Sampled)
		}
	}
	return err
}

// jsonForm is the exposition shape: maps keyed by op/outcome names instead of
// positional arrays.
type jsonForm struct {
	Ops     map[string]map[string]uint64      `json:"ops"`
	Latency map[string]map[string]LatencyStat `json:"latency_ns"`

	LookupRescans uint64 `json:"lookup_rescans"`
	NVTProbes     uint64 `json:"nvt_probe_reads"`
	Spins         uint64 `json:"lock_spins"`
	Contended     uint64 `json:"contended"`
	GetRetries    uint64 `json:"get_retries"`

	HotFills         uint64 `json:"hot_fills"`
	HotFillsRejected uint64 `json:"hot_fills_rejected"`
	HotEvictions     uint64 `json:"hot_evictions"`
	BGApplies        uint64 `json:"bg_applies"`

	Expansions     uint64 `json:"expansions"`
	ExpansionNanos uint64 `json:"expansion_ns"`

	ExpansionSwaps     uint64      `json:"expansion_swaps"`
	ExpansionSwapNanos uint64      `json:"expansion_swap_ns"`
	DrainChunks        uint64      `json:"drain_chunks"`
	DrainBuckets       uint64      `json:"drain_buckets"`
	DrainRecordsMoved  uint64      `json:"drain_records_moved"`
	DrainHelps         uint64      `json:"drain_helps"`
	DrainChunkLatency  LatencyStat `json:"drain_chunk_latency_ns"`

	WriteGroups       uint64      `json:"write_groups"`
	WriteGroupKeys    uint64      `json:"write_group_keys"`
	WriteGroupFlushes uint64      `json:"write_group_flushes"`
	WriteGroupSize    LatencyStat `json:"write_group_size"`

	VLogAppends      uint64  `json:"vlog_appends"`
	VLogAppendWords  uint64  `json:"vlog_append_words"`
	GCRelocations    uint64  `json:"gc_relocations"`
	GCRelocatedWords uint64  `json:"gc_relocated_words"`
	GCRaced          uint64  `json:"gc_raced"`
	GCRecycles       uint64  `json:"gc_recycles"`
	GCWriteAmp       float64 `json:"gc_write_amplification"`

	HitRatio float64 `json:"hot_hit_ratio"`

	NVM struct {
		ReadAccesses    uint64 `json:"read_accesses"`
		ReadWords       uint64 `json:"read_words"`
		MediaBlockReads uint64 `json:"media_block_reads"`
		WriteAccesses   uint64 `json:"write_accesses"`
		WriteWords      uint64 `json:"write_words"`
		Flushes         uint64 `json:"flushes"`
		Fences          uint64 `json:"fences"`
		ModeledNanos    uint64 `json:"modeled_ns"`
	} `json:"nvm"`

	Gauges Gauges `json:"gauges"`

	RESP *RESPSnapshot `json:"resp,omitempty"`
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	f := jsonForm{
		Ops:                map[string]map[string]uint64{},
		Latency:            map[string]map[string]LatencyStat{},
		LookupRescans:      s.LookupRescans,
		NVTProbes:          s.NVTProbes,
		Spins:              s.Spins,
		Contended:          s.Contended,
		GetRetries:         s.GetRetries,
		HotFills:           s.HotFills,
		HotFillsRejected:   s.HotFillsRejected,
		HotEvictions:       s.HotEvictions,
		BGApplies:          s.BGApplies,
		Expansions:         s.Expansions,
		ExpansionNanos:     s.ExpansionNanos,
		ExpansionSwaps:     s.ExpansionSwaps,
		ExpansionSwapNanos: s.ExpansionSwapNanos,
		DrainChunks:        s.DrainChunks,
		DrainBuckets:       s.DrainBuckets,
		DrainRecordsMoved:  s.DrainRecordsMoved,
		DrainHelps:         s.DrainHelps,
		DrainChunkLatency:  s.DrainChunkLatency,
		WriteGroups:        s.WriteGroups,
		WriteGroupKeys:     s.WriteGroupKeys,
		WriteGroupFlushes:  s.WriteGroupFlushes,
		WriteGroupSize:     s.WriteGroupSize,
		VLogAppends:        s.VLogAppends,
		VLogAppendWords:    s.VLogAppendWords,
		GCRelocations:      s.GCRelocations,
		GCRelocatedWords:   s.GCRelocatedWords,
		GCRaced:            s.GCRaced,
		GCRecycles:         s.GCRecycles,
		GCWriteAmp:         s.GCWriteAmplification(),
		HitRatio:           s.HitRatio(),
		Gauges:             s.Gauges,
		RESP:               s.RESP,
	}
	for op := Op(0); op < NumOps; op++ {
		outs := map[string]uint64{}
		lats := map[string]LatencyStat{}
		for out := Outcome(0); out < NumOutcomes; out++ {
			if s.Ops[op][out] != 0 {
				outs[out.String()] = s.Ops[op][out]
			}
			if s.Latency[op][out].Sampled != 0 {
				lats[out.String()] = s.Latency[op][out]
			}
		}
		f.Ops[op.String()] = outs
		if len(lats) > 0 {
			f.Latency[op.String()] = lats
		}
	}
	f.NVM.ReadAccesses = s.NVM.ReadAccesses
	f.NVM.ReadWords = s.NVM.ReadWords
	f.NVM.MediaBlockReads = s.NVM.MediaBlockReads
	f.NVM.WriteAccesses = s.NVM.WriteAccesses
	f.NVM.WriteWords = s.NVM.WriteWords
	f.NVM.Flushes = s.NVM.Flushes
	f.NVM.Fences = s.NVM.Fences
	f.NVM.ModeledNanos = s.NVM.ModeledNanos

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

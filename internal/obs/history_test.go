package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func histSnap(gets, writes uint64, items int64) Snapshot {
	var s Snapshot
	s.Ops[OpGet][OutHotHit] = gets / 2
	s.Ops[OpGet][OutNVTHit] = gets - gets/2
	s.Ops[OpInsert][OutOK] = writes
	s.NVM.WriteWords = writes * 4
	s.Gauges.Items = items
	s.Gauges.LoadFactor = float64(items) / 1000
	return s
}

// Two records produce one point carrying the interval's deltas and the
// closing gauges; the first record only seeds the baseline.
func TestHistoryDeltas(t *testing.T) {
	h := NewHistory(8)
	t0 := time.Unix(1000, 0)
	h.Record(histSnap(100, 10, 50), t0)
	if got := h.Points(); len(got) != 0 {
		t.Fatalf("points after seed = %d, want 0", len(got))
	}
	h.Record(histSnap(300, 25, 80), t0.Add(time.Second))
	pts := h.Points()
	if len(pts) != 1 {
		t.Fatalf("points = %d, want 1", len(pts))
	}
	p := pts[0]
	if p.Gets != 200 || p.Inserts != 15 || p.NVMWriteWords != 60 {
		t.Fatalf("deltas = gets %d inserts %d nvmw %d, want 200/15/60", p.Gets, p.Inserts, p.NVMWriteWords)
	}
	if p.Items != 80 || p.IntervalMS != 1000 {
		t.Fatalf("gauges = items %d interval %d, want 80/1000", p.Items, p.IntervalMS)
	}
	if p.HotHits != 150-50 {
		t.Fatalf("hot hits = %d, want 100", p.HotHits)
	}
}

// The ring keeps only the newest capacity points, oldest first.
func TestHistoryRingBounds(t *testing.T) {
	h := NewHistory(4)
	t0 := time.Unix(2000, 0)
	for i := 0; i <= 10; i++ {
		h.Record(histSnap(uint64(i)*100, 0, int64(i)), t0.Add(time.Duration(i)*time.Second))
	}
	pts := h.Points()
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4 (capacity)", len(pts))
	}
	for i, p := range pts {
		if want := int64(7 + i); p.Items != want {
			t.Fatalf("point %d items = %d, want %d (chronological tail)", i, p.Items, want)
		}
		if p.Gets != 100 {
			t.Fatalf("point %d gets = %d, want 100 per interval", i, p.Gets)
		}
	}
}

// Per-shard wear proxies are used-word growth, clamped at zero when a
// recycle shrinks the gauge.
func TestHistoryShardWear(t *testing.T) {
	shardSnap := func(used0, used1 int64) Snapshot {
		var s Snapshot
		s.Gauges.PerShard = []ShardGauges{
			{Shard: 0, Items: 1, VLogUsedWords: used0},
			{Shard: 1, Items: 2, VLogUsedWords: used1},
		}
		return s
	}
	h := NewHistory(4)
	t0 := time.Unix(3000, 0)
	h.Record(shardSnap(1000, 500), t0)
	h.Record(shardSnap(1400, 200), t0.Add(time.Second)) // shard 1 recycled
	pts := h.Points()
	if len(pts) != 1 || len(pts[0].Shards) != 2 {
		t.Fatalf("points = %+v, want 1 point with 2 shards", pts)
	}
	if w := pts[0].Shards[0].WearWords; w != 400 {
		t.Fatalf("shard 0 wear = %d, want 400", w)
	}
	if w := pts[0].Shards[1].WearWords; w != 0 {
		t.Fatalf("shard 1 wear = %d, want 0 (clamped after recycle)", w)
	}
}

// WriteJSON emits valid JSON with capacity and chronological points.
func TestHistoryJSON(t *testing.T) {
	h := NewHistory(4)
	t0 := time.Unix(4000, 0)
	h.Record(histSnap(0, 0, 1), t0)
	h.Record(histSnap(50, 5, 2), t0.Add(time.Second))
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var out struct {
		Capacity int            `json:"capacity"`
		Points   []HistoryPoint `json:"points"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, buf.String())
	}
	if out.Capacity != 4 || len(out.Points) != 1 || out.Points[0].Gets != 50 {
		t.Fatalf("json = %+v, want capacity 4, 1 point, gets 50", out)
	}
}

// Command hdnhload bulk-loads records into any of the four schemes, prints
// occupancy and NVM-traffic statistics, and can persist the device image
// for later inspection or recovery experiments.
//
//	hdnhload -scheme HDNH -n 100000 -verify
//	hdnhload -scheme CCEH -n 50000 -out /tmp/cceh.img
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hdnh/internal/harness"
	"hdnh/internal/kv"
	"hdnh/internal/nvm"
	"hdnh/internal/scheme"
	"hdnh/internal/ycsb"
)

func main() {
	var (
		schemeName = flag.String("scheme", "HDNH", "scheme: "+fmt.Sprint(scheme.Names()))
		n          = flag.Int64("n", 100_000, "records to load")
		threads    = flag.Int("threads", 4, "loader goroutines")
		verify     = flag.Bool("verify", false, "read every record back after loading")
		out        = flag.String("out", "", "write the persisted device image to this file")
		mode       = flag.String("mode", "model", "device mode: model | emulate | strict")
	)
	flag.Parse()

	if *n <= 0 {
		usageErr("-n %d must be positive", *n)
	}
	if *threads <= 0 {
		usageErr("-threads %d must be positive", *threads)
	}

	words := int64(0)
	{
		// Same sizing rule the harness uses.
		words = (*n + 1024) * kv.SlotWords * 24
		if words < 1<<20 {
			words = 1 << 20
		}
		if r := words % nvm.BlockWords; r != 0 {
			words += nvm.BlockWords - r
		}
	}
	var cfg nvm.Config
	switch *mode {
	case "model":
		cfg = nvm.DefaultConfig(words)
	case "emulate":
		cfg = nvm.EmulateConfig(words)
	case "strict":
		cfg = nvm.StrictConfig(words)
	default:
		usageErr("unknown mode %q", *mode)
	}
	dev, err := nvm.New(cfg)
	if err != nil {
		fatal("creating device: %v", err)
	}
	st, err := scheme.Open(*schemeName, dev, *n)
	if err != nil {
		fatal("opening scheme: %v", err)
	}
	defer st.Close()

	start := time.Now()
	if err := harness.Preload(st, *n, *threads); err != nil {
		fatal("loading: %v", err)
	}
	elapsed := time.Since(start)
	fmt.Printf("scheme      %s\n", st.Name())
	fmt.Printf("records     %d in %v (%.3f Mops/s)\n", *n, elapsed.Round(time.Millisecond),
		float64(*n)/elapsed.Seconds()/1e6)
	fmt.Printf("count       %d\n", st.Count())
	fmt.Printf("load factor %.3f\n", st.LoadFactor())
	fmt.Printf("device      %d of %d words used\n", dev.Words()-dev.FreeWords(), dev.Words())

	if *verify {
		s := st.NewSession()
		before := s.NVMStats()
		vStart := time.Now()
		for i := int64(0); i < *n; i++ {
			v, ok := s.Get(ycsb.RecordKey(i))
			if !ok || v != ycsb.ValueFor(i) {
				fatal("verify: record %d wrong (%q, %v)", i, v.String(), ok)
			}
		}
		vElapsed := time.Since(vStart)
		delta := s.NVMStats().Sub(before)
		fmt.Printf("verify      OK, %d records in %v (%.3f Mops/s)\n",
			*n, vElapsed.Round(time.Millisecond), float64(*n)/vElapsed.Seconds()/1e6)
		fmt.Printf("verify NVM  %s\n", delta)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("creating image file: %v", err)
		}
		if err := dev.SaveImage(f); err != nil {
			fatal("saving image: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("closing image file: %v", err)
		}
		fmt.Printf("image       %s\n", *out)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdnhload: "+format+"\n", args...)
	os.Exit(1)
}

// usageErr reports a bad flag value and exits with the usage status.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdnhload: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// Command hdnhinspect examines a persisted device image (produced by
// `hdnhload -out` or a crash snapshot): it prints the device superblock,
// recovers the HDNH table stored on it, and reports occupancy statistics
// and bucket-fill histograms — the debugging view of a table's shape.
//
//	hdnhload -scheme HDNH -n 100000 -out /tmp/t.img
//	hdnhinspect -img /tmp/t.img
//
// The flight subcommand renders a binary flight-recorder dump (from
// `hdnhbench -flight-out` or /debug/flight?format=bin) as text, or converts
// it to Chrome trace-event JSON for Perfetto:
//
//	hdnhinspect flight -in flight.bin
//	hdnhinspect flight -in flight.bin -perfetto flight.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hdnh/internal/core"
	"hdnh/internal/flight"
	"hdnh/internal/nvm"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "flight" {
		flightCmd(os.Args[2:])
		return
	}
	var (
		img     = flag.String("img", "", "device image file (required)")
		workers = flag.Int("workers", 4, "recovery workers")
		check   = flag.Bool("check", false, "audit all cross-structure invariants (slow)")
	)
	flag.Parse()
	if *img == "" {
		fatal("pass -img <file> (create one with hdnhload -out)")
	}

	image, err := nvm.LoadImageFile(*img)
	if err != nil {
		fatal("loading image: %v", err)
	}
	dev, err := nvm.FromImage(nvm.DefaultConfig(int64(len(image))), image)
	if err != nil {
		fatal("booting image: %v", err)
	}

	fmt.Printf("device\n")
	fmt.Printf("  capacity   %d words (%.1f MB)\n", dev.Words(), float64(dev.Words())*8/(1<<20))
	fmt.Printf("  allocated  %d words (%.1f MB)\n", dev.Words()-dev.FreeWords(),
		float64(dev.Words()-dev.FreeWords())*8/(1<<20))
	fmt.Printf("  roots     ")
	for i := 0; i < nvm.NumRoots; i++ {
		if v := dev.Root(i); v != 0 {
			fmt.Printf(" [%d]=%d", i, v)
		}
	}
	fmt.Println()

	if dev.Root(0) == 0 {
		fmt.Println("\nno HDNH table on this device (root 0 empty)")
		return
	}

	opts := core.DefaultOptions()
	opts.RecoveryWorkers = *workers
	start := time.Now()
	tbl, err := core.Open(dev, opts)
	if err != nil {
		fatal("recovering table: %v", err)
	}
	defer tbl.Close()
	rs := tbl.LastRecovery()

	fmt.Printf("\nhdnh table (recovered in %v: OCF %v, hot %v, clean=%v, dups=%d)\n",
		time.Since(start).Round(time.Microsecond),
		rs.OCFRebuild.Round(time.Microsecond), rs.HotRebuild.Round(time.Microsecond),
		rs.CleanShutdown, rs.DuplicatesResolved)
	st := tbl.Stats()
	fmt.Printf("  items       %d\n", st.Items)
	fmt.Printf("  capacity    %d slots (load %.3f)\n", st.Capacity, st.LoadFactor)
	fmt.Printf("  levels      top %d + bottom %d segments, m=%d (segment %d KB)\n",
		st.TopSegments, st.BottomSegments, st.SegmentBuckets, st.SegmentBuckets*256/1024)
	fmt.Printf("  generation  %d\n", st.Generation)
	fmt.Printf("  hot table   %d / %d entries\n", st.HotEntries, st.HotCapacity)

	top, bottom := tbl.OccupancyHistogram()
	fmt.Printf("\nbucket occupancy (buckets holding k of %d slots)\n", core.SlotsPerBucket)
	fmt.Printf("  k:      %s\n", header(core.SlotsPerBucket))
	fmt.Printf("  top:    %s\n", row(top[:]))
	fmt.Printf("  bottom: %s\n", row(bottom[:]))

	if *check {
		start := time.Now()
		errs := tbl.CheckInvariants()
		if len(errs) == 0 {
			fmt.Printf("\ninvariants: all hold (%v) ✓\n", time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Printf("\ninvariants: %d VIOLATIONS\n", len(errs))
			for i, e := range errs {
				if i == 20 {
					fmt.Printf("  ... and %d more\n", len(errs)-20)
					break
				}
				fmt.Printf("  %v\n", e)
			}
			os.Exit(1)
		}
	}
}

// flightCmd renders or converts a binary flight-recorder dump.
func flightCmd(args []string) {
	fs := flag.NewFlagSet("flight", flag.ExitOnError)
	in := fs.String("in", "", "binary flight dump (required; from hdnhbench -flight-out or /debug/flight?format=bin)")
	perfetto := fs.String("perfetto", "", "also convert the dump to Chrome trace-event JSON at this path")
	fs.Parse(args)
	if *in == "" {
		fatal("flight: pass -in <dump>")
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal("flight: %v", err)
	}
	d, err := flight.ReadBinary(f)
	f.Close()
	if err != nil {
		fatal("flight: reading %s: %v", *in, err)
	}
	if err := flight.WriteText(os.Stdout, d); err != nil {
		fatal("flight: %v", err)
	}
	if *perfetto != "" {
		out, err := os.Create(*perfetto)
		if err != nil {
			fatal("flight: %v", err)
		}
		err = flight.WriteChromeTrace(out, d)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal("flight: writing %s: %v", *perfetto, err)
		}
		fmt.Fprintf(os.Stderr, "hdnhinspect: perfetto trace written to %s\n", *perfetto)
	}
}

func header(slots int) string {
	var b strings.Builder
	for k := 0; k <= slots; k++ {
		fmt.Fprintf(&b, "%8d", k)
	}
	return b.String()
}

func row(hist []int64) string {
	var b strings.Builder
	for _, v := range hist {
		fmt.Fprintf(&b, "%8d", v)
	}
	return b.String()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdnhinspect: "+format+"\n", args...)
	os.Exit(1)
}

// Command hdnhbench regenerates the HDNH paper's evaluation figures and
// tables on the emulated NVM device.
//
// Usage:
//
//	hdnhbench -fig 13                 # one figure
//	hdnhbench -fig 14 -records 200000 -ops 400000 -mode emulate
//	hdnhbench -table 1
//	hdnhbench -all                    # everything, paper order
//
// Output is the text-table format recorded in EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"hdnh/internal/core"
	"hdnh/internal/flight"
	"hdnh/internal/harness"
	"hdnh/internal/nvm"
	"hdnh/internal/obs"
)

func main() {
	var (
		fig       = flag.String("fig", "", "figure to regenerate: 11a, 11b, 12, 13, 14, 15, ablation, loadfactor, hybrid, resize, vloggc, flightdemo, batchscale, shardscale, pipescale, putscale")
		table     = flag.String("table", "", "table to regenerate: 1")
		all       = flag.Bool("all", false, "run every figure and table")
		records   = flag.Int64("records", 100_000, "preloaded record count")
		ops       = flag.Int64("ops", 200_000, "operations per measurement")
		threads   = flag.Int("threads", 16, "maximum threads for concurrency sweeps")
		batch     = flag.Int("batch", 0, "drive reads and deletes through the scheme batch ops, this many keys per call (0 = per-key ops)")
		mode      = flag.String("mode", "emulate", "device mode: model | emulate")
		seed      = flag.Uint64("seed", 42, "workload seed")
		csvDir    = flag.String("csv", "", "also write each experiment as <dir>/<id>.csv")
		jsonOut   = flag.String("json", "", "also write every selected experiment to this file as one JSON document")
		metrics   = flag.Bool("metrics", false, "collect HDNH observability counters and print the Prometheus exposition after the runs")
		flightOut = flag.String("flight-out", "", "record a flight trace across the runs and write it to this file (.json => Chrome/Perfetto trace events, else binary dump)")
	)
	flag.Parse()

	if *records <= 0 {
		usageErr("-records %d must be positive", *records)
	}
	if *ops <= 0 {
		usageErr("-ops %d must be positive", *ops)
	}
	if *threads <= 0 {
		usageErr("-threads %d must be positive", *threads)
	}

	if *batch < 0 {
		usageErr("-batch %d must not be negative", *batch)
	}

	sc := harness.Scale{
		Records:   *records,
		Ops:       *ops,
		Threads:   *threads,
		BatchSize: *batch,
		Seed:      *seed,
	}
	switch *mode {
	case "model":
		sc.Mode = nvm.ModeModel
	case "emulate":
		sc.Mode = nvm.ModeEmulate
	default:
		usageErr("unknown mode %q", *mode)
	}

	var reg *obs.Metrics
	if *metrics {
		// Every HDNH table the harness builds through the scheme registry
		// records into one shared registry; the exposition below aggregates
		// all selected experiments.
		reg = obs.New(obs.Config{})
		core.SetDefaultMetrics(reg)
	}

	var fr *flight.Recorder
	if *flightOut != "" {
		// Like the metrics registry: one recorder shared by every table the
		// harness builds, dumped once after the selected runs. Rings are sized
		// well past the default: the dump is taken once at the end, so rare
		// structural spans (resize, recovery) must survive the high-frequency
		// hot-table traffic that lands in the same rings.
		fr = flight.New(flight.Config{RingEvents: 1 << 17})
		core.SetDefaultFlight(fr)
	}

	type job struct {
		name string
		run  func() error
	}
	var collected []*harness.Experiment
	emit := func(exp *harness.Experiment) error {
		if *csvDir != "" {
			path := fmt.Sprintf("%s/%s.csv", *csvDir, exp.ID)
			if err := os.WriteFile(path, []byte(exp.CSV()), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
		}
		if *jsonOut != "" {
			collected = append(collected, exp)
		}
		return exp.Render(os.Stdout)
	}
	single := func(f func(harness.Scale) (*harness.Experiment, error)) func() error {
		return func() error {
			exp, err := f(sc)
			if err != nil {
				return err
			}
			return emit(exp)
		}
	}
	jobs := map[string]job{
		"fig11a": {"Figure 11(a)", single(harness.Fig11a)},
		"fig11b": {"Figure 11(b)", single(harness.Fig11b)},
		"fig12":  {"Figure 12", single(harness.Fig12)},
		"fig13":  {"Figure 13", single(harness.Fig13)},
		"fig14": {"Figure 14", func() error {
			exps, err := harness.Fig14(sc)
			if err != nil {
				return err
			}
			for _, e := range exps {
				if err := emit(e); err != nil {
					return err
				}
			}
			return nil
		}},
		"fig15":      {"Figure 15", single(harness.Fig15)},
		"table1":     {"Table 1", single(harness.Table1)},
		"ablation":   {"Ablation (extension)", single(harness.Ablation)},
		"loadfactor": {"Load factor (extension)", single(harness.LoadFactorExperiment)},
		"hybrid":     {"Hybrid related-work comparison (extension)", single(harness.HybridExperiment)},
		"resize":     {"Resize latency: blocking vs incremental (extension)", single(harness.FigResize)},
		"vloggc":     {"Value-log churn: GC off vs online GC (extension)", single(harness.FigVlogGC)},
		"flightdemo": {"Flight-recorder demo: mixed churn with resize, GC, and recovery (extension)", single(harness.FigFlightDemo)},
		"batchscale": {"Batched reads: throughput vs MultiGet batch size (extension)", single(harness.FigBatchScale)},
		"shardscale": {"Shard router: mixed throughput vs shard count (extension)", single(harness.FigShardScale)},
		"pipescale":  {"Wire protocol: HTTP /kv/ vs RESP pipeline depth (extension)", single(harness.FigPipeScale)},
		"putscale":   {"Group commit: upsert throughput vs MultiPut batch size (extension)", single(harness.FigPutScale)},
	}
	order := []string{"fig11a", "fig11b", "fig12", "fig13", "fig14", "fig15", "table1", "ablation", "loadfactor", "hybrid", "resize", "vloggc", "flightdemo", "batchscale", "shardscale", "pipescale", "putscale"}

	var selected []string
	switch {
	case *all:
		selected = order
	case *fig != "":
		name := strings.ToLower(*fig)
		switch name {
		case "ablation", "loadfactor", "hybrid", "resize", "vloggc", "flightdemo", "batchscale", "shardscale", "pipescale", "putscale":
		default:
			name = "fig" + name
		}
		selected = []string{name}
	case *table != "":
		selected = []string{"table" + *table}
	default:
		fmt.Fprintln(os.Stderr, "hdnhbench: pass -fig, -table, or -all (see -h)")
		os.Exit(2)
	}

	for _, name := range selected {
		j, ok := jobs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "hdnhbench: unknown experiment %q (have: %s)\n", name, strings.Join(order, ", "))
			os.Exit(2)
		}
		fmt.Printf("# %s — records=%d ops=%d threads<=%d mode=%s GOMAXPROCS=%d\n",
			j.name, sc.Records, sc.Ops, sc.Threads, sc.Mode, gomaxprocs())
		if err := j.run(); err != nil {
			fmt.Fprintf(os.Stderr, "hdnhbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	if reg != nil {
		fmt.Printf("\n# HDNH observability counters, aggregated across the selected experiments\n")
		if err := reg.Snapshot().WriteProm(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "hdnhbench: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}

	if fr != nil {
		if err := writeFlight(*flightOut, fr); err != nil {
			fmt.Fprintf(os.Stderr, "hdnhbench: writing flight trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\n# flight trace written to %s\n", *flightOut)
	}

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, sc, collected); err != nil {
			fmt.Fprintf(os.Stderr, "hdnhbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("\n# JSON results written to %s\n", *jsonOut)
	}
}

// writeJSON dumps the selected experiments as one machine-readable document
// (the before/after comparisons in BENCH_*.json are built from these).
func writeJSON(path string, sc harness.Scale, exps []*harness.Experiment) error {
	doc := struct {
		Records    int64                 `json:"records"`
		Ops        int64                 `json:"ops"`
		Threads    int                   `json:"threads"`
		BatchSize  int                   `json:"batch_size,omitempty"`
		Mode       string                `json:"mode"`
		Seed       uint64                `json:"seed"`
		GOMAXPROCS int                   `json:"gomaxprocs"`
		Results    []*harness.Experiment `json:"results"`
	}{sc.Records, sc.Ops, sc.Threads, sc.BatchSize, sc.Mode.String(), sc.Seed, gomaxprocs(), exps}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// writeFlight dumps the recorder: Chrome trace-event JSON (load it in
// Perfetto or chrome://tracing) for .json paths, the compact binary format
// (read it back with `hdnhinspect flight`) otherwise.
func writeFlight(path string, fr *flight.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	d := fr.Snapshot()
	if strings.HasSuffix(path, ".json") {
		err = flight.WriteChromeTrace(f, d)
	} else {
		err = flight.WriteBinary(f, d)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdnhbench: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func gomaxprocs() int { return runtime.GOMAXPROCS(0) }

package main

import (
	"bytes"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hdnh/internal/bigkv"
	"hdnh/internal/flight"
	"hdnh/internal/nvm"
	"hdnh/internal/obs"
)

// testServer builds a server over a small in-memory store, with the debug
// log captured so the access-log assertions can read it back.
func testServer(t *testing.T, withFlight bool) (*server, *bytes.Buffer) {
	t.Helper()
	dev, err := nvm.New(nvm.DefaultConfig(1 << 21))
	if err != nil {
		t.Fatal(err)
	}
	opts := bigkv.DefaultOptions()
	opts.Table.Metrics = obs.New(obs.Config{})
	var fr *flight.Recorder
	if withFlight {
		fr = flight.New(flight.Config{})
		opts.Table.Flight = fr
	}
	st, err := bigkv.Create(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	return &server{st: st, log: logger, flight: fr}, &logBuf
}

func TestKVRoundTripAndAccessLog(t *testing.T) {
	srv, logBuf := testServer(t, false)
	mux := http.NewServeMux()
	mux.HandleFunc("/kv/", srv.kv)
	h := srv.accessLog(mux)

	put := httptest.NewRequest(http.MethodPut, "/kv/alpha", strings.NewReader("value-bytes"))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, put)
	if w.Code != http.StatusNoContent {
		t.Fatalf("PUT = %d, want 204", w.Code)
	}

	get := httptest.NewRequest(http.MethodGet, "/kv/alpha", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, get)
	if w.Code != http.StatusOK || w.Body.String() != "value-bytes" {
		t.Fatalf("GET = %d %q", w.Code, w.Body.String())
	}

	logs := logBuf.String()
	for _, want := range []string{"method=PUT", "method=GET", "key_hash=", "status=200", "status=204", "bytes=11"} {
		if !strings.Contains(logs, want) {
			t.Fatalf("access log missing %q:\n%s", want, logs)
		}
	}
}

func TestMetricsEndpointsSetContentTypeAndStatus(t *testing.T) {
	srv, _ := testServer(t, false)

	w := httptest.NewRecorder()
	srv.metricsProm(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	if !strings.Contains(w.Body.String(), "hdnh_") {
		t.Fatal("/metrics body carries no hdnh_ series")
	}

	w = httptest.NewRecorder()
	srv.metricsJSON(w, httptest.NewRequest(http.MethodGet, "/metrics.json", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics.json = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics.json Content-Type = %q", ct)
	}
}

// TestExpositionErrorIsCleanServerError is the regression test for the
// partial-write bug: a failing render must produce a 500 with no exposition
// bytes on the wire — before the fix the handler streamed into the
// ResponseWriter, so by the time rendering failed the client already held a
// 200 and a truncated body.
func TestExpositionErrorIsCleanServerError(t *testing.T) {
	srv, _ := testServer(t, false)
	w := httptest.NewRecorder()
	srv.writeBuffered(w, "/metrics", "text/plain",
		func(out io.Writer) error {
			io.WriteString(out, "hdnh_partial 1\n") // buffered, must never reach the client
			return errors.New("boom")
		})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", w.Code)
	}
	if strings.Contains(w.Body.String(), "hdnh_partial") {
		t.Fatalf("partial exposition leaked to the client: %q", w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); strings.HasPrefix(ct, "text/plain; version=") {
		t.Fatalf("exposition Content-Type set on an error response: %q", ct)
	}
}

func TestDebugFlightFormats(t *testing.T) {
	srv, _ := testServer(t, true)
	// Generate a little traffic so the trace is non-empty.
	sess := srv.st.NewSession()
	if err := sess.Put([]byte("k"), []byte("some value for the trace")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := sess.Get([]byte("k")); err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}

	cases := []struct {
		query, contentType, needle string
	}{
		{"", "text/plain; charset=utf-8", "insert"},
		{"?format=text", "text/plain; charset=utf-8", "insert"},
		{"?format=json", "application/json", "traceEvents"},
	}
	for _, c := range cases {
		w := httptest.NewRecorder()
		srv.debugFlight(w, httptest.NewRequest(http.MethodGet, "/debug/flight"+c.query, nil))
		if w.Code != http.StatusOK {
			t.Fatalf("flight%s = %d", c.query, w.Code)
		}
		if ct := w.Header().Get("Content-Type"); ct != c.contentType {
			t.Fatalf("flight%s Content-Type = %q, want %q", c.query, ct, c.contentType)
		}
		if !strings.Contains(w.Body.String(), c.needle) {
			t.Fatalf("flight%s body has no %q", c.query, c.needle)
		}
	}

	// The binary format must round-trip through the hardened reader.
	w := httptest.NewRecorder()
	srv.debugFlight(w, httptest.NewRequest(http.MethodGet, "/debug/flight?format=bin", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("flight bin = %d", w.Code)
	}
	if _, err := flight.ReadBinary(w.Body); err != nil {
		t.Fatalf("binary dump does not parse: %v", err)
	}

	// Unknown formats are a 400, a disabled recorder a 404.
	w = httptest.NewRecorder()
	srv.debugFlight(w, httptest.NewRequest(http.MethodGet, "/debug/flight?format=weird", nil))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown format = %d, want 400", w.Code)
	}
	off, _ := testServer(t, false)
	w = httptest.NewRecorder()
	off.debugFlight(w, httptest.NewRequest(http.MethodGet, "/debug/flight", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("disabled recorder = %d, want 404", w.Code)
	}
}

// Command hdnhserve runs an HDNH table behind a small HTTP server: a
// key-value API plus the observability endpoints (Prometheus text and JSON
// exposition of the internal/obs counters). It exists so the metrics layer
// can be watched live — point a browser or Prometheus scraper at /metrics
// while load runs against /kv/.
//
//	hdnhserve -addr :8080 -capacity 100000 -mode model
//
// Endpoints:
//
//	GET    /kv/<key>      value bytes, or 404
//	PUT    /kv/<key>      body is the value (≤15 bytes); upsert
//	DELETE /kv/<key>      remove the record
//	GET    /metrics       Prometheus text exposition
//	GET    /metrics.json  the same counters as indented JSON
//	GET    /stats         one-line table shape summary
//	GET    /healthz       liveness probe
//
// Contended operations (retry budgets exhausted under sustained movement)
// return 503 with a Retry-After header rather than a fabricated 404 — the
// HTTP face of the ErrContended semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"hdnh/internal/core"
	"hdnh/internal/kv"
	"hdnh/internal/nvm"
	"hdnh/internal/obs"
	"hdnh/internal/scheme"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		capacity = flag.Int64("capacity", 100_000, "record capacity the device is sized for")
		mode     = flag.String("mode", "model", "device mode: model | emulate")
		sample   = flag.Uint64("sample", obs.DefaultSampleEvery, "latency-sample one in N operations (1 samples all)")
	)
	flag.Parse()

	if *capacity <= 0 {
		usageErr("-capacity %d must be positive", *capacity)
	}
	if *sample == 0 {
		usageErr("-sample must be at least 1")
	}

	words := deviceWords(*capacity)
	var cfg nvm.Config
	switch *mode {
	case "model":
		cfg = nvm.DefaultConfig(words)
	case "emulate":
		cfg = nvm.EmulateConfig(words)
	default:
		usageErr("unknown mode %q", *mode)
	}

	dev, err := nvm.New(cfg)
	if err != nil {
		fatal("creating device: %v", err)
	}
	opts := core.DefaultOptions()
	opts.InitBottomSegments = bottomSegments(*capacity, opts.SegmentBuckets)
	opts.Metrics = obs.New(obs.Config{SampleEvery: *sample})
	tbl, err := core.Create(dev, opts)
	if err != nil {
		fatal("creating table: %v", err)
	}

	srv := &server{tbl: tbl}
	mux := http.NewServeMux()
	mux.HandleFunc("/kv/", srv.kv)
	mux.HandleFunc("/metrics", srv.metricsProm)
	mux.HandleFunc("/metrics.json", srv.metricsJSON)
	mux.HandleFunc("/stats", srv.stats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	// A configured server, not the bare http.ListenAndServe default: without
	// timeouts one slow-loris client pins a connection goroutine forever, and
	// without Shutdown a SIGTERM kills the process mid-request with the
	// table's clean-shutdown flag never written.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      15 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("hdnhserve: listening on %s (capacity %d, mode %s)", *addr, *capacity, *mode)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		tbl.Close()
		fatal("%v", err)
	case <-ctx.Done():
		log.Printf("hdnhserve: signal received, draining connections")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("hdnhserve: shutdown: %v", err)
		}
		if err := tbl.Close(); err != nil {
			log.Printf("hdnhserve: closing table: %v", err)
		}
		log.Printf("hdnhserve: clean shutdown")
	}
}

// deviceWords mirrors the sizing rule hdnhload and the harness use.
func deviceWords(records int64) int64 {
	words := (records + 1024) * kv.SlotWords * 24
	if words < 1<<20 {
		words = 1 << 20
	}
	if r := words % nvm.BlockWords; r != 0 {
		words += nvm.BlockWords - r
	}
	return words
}

// bottomSegments sizes the initial structure for ~60% load at capacity,
// the same rule the scheme registry applies.
func bottomSegments(hint int64, m int) int {
	slotsWanted := hint * 10 / 6
	perSegment := int64(m) * 8
	segs := (slotsWanted + 3*perSegment - 1) / (3 * perSegment)
	if segs < 1 {
		segs = 1
	}
	return int(segs)
}

// server owns the table and a pool of per-request sessions. Sessions are
// single-goroutine objects; the pool hands each in-flight request its own.
type server struct {
	tbl      *core.Table
	sessions sync.Pool
}

func (s *server) session() *core.Session {
	if v := s.sessions.Get(); v != nil {
		return v.(*core.Session)
	}
	return s.tbl.NewSession()
}

func (s *server) release(sess *core.Session) {
	// Bridge this session's NVM traffic into the registry while we still own
	// the session; /metrics then needs no cross-goroutine stats reads.
	sess.SyncObs()
	s.sessions.Put(sess)
}

func (s *server) kv(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/kv/")
	if name == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	k, err := kv.MakeKey([]byte(name))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sess := s.session()
	defer s.release(sess)

	switch r.Method {
	case http.MethodGet:
		v, err := sess.Lookup(k)
		switch {
		case err == nil:
			io.WriteString(w, v.String())
		case errors.Is(err, scheme.ErrContended):
			contended(w)
		default:
			http.Error(w, "not found", http.StatusNotFound)
		}

	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 64))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		v, err := kv.MakeValue(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Upsert: update the common case, fall back to insert, and absorb
		// the one race where another writer inserts between the two.
		for {
			err = sess.Update(k, v)
			if errors.Is(err, scheme.ErrNotFound) {
				err = sess.Insert(k, v)
				if errors.Is(err, scheme.ErrExists) {
					continue
				}
			}
			break
		}
		switch {
		case err == nil:
			w.WriteHeader(http.StatusNoContent)
		case errors.Is(err, scheme.ErrContended):
			contended(w)
		case errors.Is(err, scheme.ErrFull):
			http.Error(w, "table full", http.StatusInsufficientStorage)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}

	case http.MethodDelete:
		err := sess.Delete(k)
		switch {
		case err == nil:
			w.WriteHeader(http.StatusNoContent)
		case errors.Is(err, scheme.ErrContended):
			contended(w)
		case errors.Is(err, scheme.ErrNotFound):
			http.Error(w, "not found", http.StatusNotFound)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}

	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// contended answers a budget-exhausted operation: the request may succeed on
// retry once the movement burst passes, so say exactly that.
func contended(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	http.Error(w, "contended, retry", http.StatusServiceUnavailable)
}

func (s *server) metricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.tbl.MetricsSnapshot().WriteProm(w); err != nil {
		log.Printf("hdnhserve: /metrics: %v", err)
	}
}

func (s *server) metricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.tbl.MetricsSnapshot().WriteJSON(w); err != nil {
		log.Printf("hdnhserve: /metrics.json: %v", err)
	}
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintln(w, s.tbl.Stats())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdnhserve: "+format+"\n", args...)
	os.Exit(1)
}

// usageErr reports a bad flag value and exits with the usage status.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdnhserve: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

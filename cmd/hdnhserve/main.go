// Command hdnhserve runs an HDNH-indexed store behind a small HTTP server:
// a key-value API plus the observability endpoints (Prometheus text and
// JSON exposition of the internal/obs counters). The store is bigkv — the
// HDNH table as index over a segmented value log with online GC — so
// values are no longer capped at 15 bytes and the GC counters can be
// watched live: point a browser or Prometheus scraper at /metrics while
// load runs against /kv/.
//
//	hdnhserve -addr :8080 -capacity 100000 -mode model
//
// Endpoints:
//
//	GET    /kv/<key>      value bytes, or 404
//	PUT    /kv/<key>      body is the value (≤64 KiB); upsert
//	DELETE /kv/<key>      remove the record
//	POST   /batch         JSON batch of get/put/delete ops; runs of
//	       consecutive same-kind ops drain through the store's MultiGet/
//	       MultiPut/MultiDelete, one response entry per op
//	GET    /metrics       Prometheus text exposition
//	GET    /metrics.json  the same counters as indented JSON
//	GET    /stats         one-line table and value-log shape summary
//	GET    /healthz       liveness probe
//
// With -debug the process also attaches a flight recorder to the store and
// serves the live-debug surface:
//
//	GET    /debug/flight?format=text|json|bin   the current trace (plain
//	       text, Chrome trace-event JSON for Perfetto, or the binary dump
//	       hdnhinspect flight reads)
//	/debug/pprof/...                            net/http/pprof
//
// and the structured log drops to debug level, which enables the
// per-request access log (method, key hash, outcome, latency, bytes).
//
// Contended operations (retry budgets exhausted under sustained movement)
// return 503 with a Retry-After header rather than a fabricated 404 — the
// HTTP face of the ErrContended semantics. A value log full of live data
// returns 507.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hdnh/internal/bigkv"
	"hdnh/internal/flight"
	"hdnh/internal/hashfn"
	"hdnh/internal/kv"
	"hdnh/internal/nvm"
	"hdnh/internal/obs"
	"hdnh/internal/scheme"
	"hdnh/internal/vlog"
)

// maxValueBytes bounds PUT bodies; the value log stores them whole.
const maxValueBytes = 64 << 10

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		capacity = flag.Int64("capacity", 100_000, "record capacity the device is sized for")
		mode     = flag.String("mode", "model", "device mode: model | emulate")
		sample   = flag.Uint64("sample", obs.DefaultSampleEvery, "latency-sample one in N operations (1 samples all)")
		logMB    = flag.Int64("logmb", 8, "value-log capacity in MiB (fixed; the GC recycles within it)")
		shards   = flag.Int("shards", 1, "hash-router shard count (power of two; each shard gets its own table, value log and GC worker)")
		debug    = flag.Bool("debug", false, "attach a flight recorder and serve /debug/flight and /debug/pprof; log at debug level (per-request access log)")
	)
	flag.Parse()

	if *capacity <= 0 {
		usageErr("-capacity %d must be positive", *capacity)
	}
	if *sample == 0 {
		usageErr("-sample must be at least 1")
	}
	if *logMB <= 0 {
		usageErr("-logmb %d must be positive", *logMB)
	}
	if *shards < 1 || *shards&(*shards-1) != 0 {
		usageErr("-shards %d must be a power of two", *shards)
	}

	level := new(slog.LevelVar)
	if *debug {
		level.Set(slog.LevelDebug)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	opts := bigkv.DefaultOptions()
	opts.Table.Shards = *shards
	opts.Table.InitBottomSegments = bottomSegments(*capacity, opts.Table.SegmentBuckets)
	opts.Table.Metrics = obs.New(obs.Config{SampleEvery: *sample})
	var fr *flight.Recorder
	if *debug {
		fr = flight.New(flight.Config{})
		opts.Table.Flight = fr
	}
	opts.SegmentWords = 1 << 14
	opts.Segments = *logMB << 20 / 8 / opts.SegmentWords
	if opts.Segments < 2 {
		opts.Segments = 2
	}

	words := deviceWords(*capacity, opts.SegmentWords*opts.Segments)
	var cfg nvm.Config
	switch *mode {
	case "model":
		cfg = nvm.DefaultConfig(words)
	case "emulate":
		cfg = nvm.EmulateConfig(words)
	default:
		usageErr("unknown mode %q", *mode)
	}

	dev, err := nvm.New(cfg)
	if err != nil {
		fatal("creating device: %v", err)
	}
	st, err := bigkv.Create(dev, opts)
	if err != nil {
		fatal("creating store: %v", err)
	}

	srv := &server{st: st, log: logger, flight: fr,
		sessions: make(chan *bigkv.Session, sessionPoolSize)}
	mux := http.NewServeMux()
	mux.HandleFunc("/kv/", srv.kv)
	mux.HandleFunc("/batch", srv.batch)
	mux.HandleFunc("/metrics", srv.metricsProm)
	mux.HandleFunc("/metrics.json", srv.metricsJSON)
	mux.HandleFunc("/stats", srv.stats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if *debug {
		mux.HandleFunc("/debug/flight", srv.debugFlight)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	// A configured server, not the bare http.ListenAndServe default: without
	// timeouts one slow-loris client pins a connection goroutine forever, and
	// without Shutdown a SIGTERM kills the process mid-request with the
	// table's clean-shutdown flag never written.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.accessLog(mux),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      15 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "capacity", *capacity,
			"mode", *mode, "log_mib", *logMB, "shards", *shards, "debug", *debug)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		st.Close()
		fatal("%v", err)
	case <-ctx.Done():
		logger.Info("signal received, draining connections")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		if err := st.Close(); err != nil {
			logger.Error("closing store", "err", err)
		}
		logger.Info("clean shutdown")
	}
}

// deviceWords mirrors the sizing rule hdnhload and the harness use, plus
// room for the value log.
func deviceWords(records, logWords int64) int64 {
	words := (records+1024)*kv.SlotWords*24 + logWords + nvm.BlockWords
	if words < 1<<20 {
		words = 1 << 20
	}
	if r := words % nvm.BlockWords; r != 0 {
		words += nvm.BlockWords - r
	}
	return words
}

// bottomSegments sizes the initial structure for ~60% load at capacity,
// the same rule the scheme registry applies.
func bottomSegments(hint int64, m int) int {
	slotsWanted := hint * 10 / 6
	perSegment := int64(m) * 8
	segs := (slotsWanted + 3*perSegment - 1) / (3 * perSegment)
	if segs < 1 {
		segs = 1
	}
	return int(segs)
}

// sessionPoolSize bounds the idle-session free list. A request burst beyond
// it still gets sessions (session() falls back to NewSession); the overflow
// is Closed on release, so the pool — not the burst — bounds how many epoch
// slots the server holds long-term.
const sessionPoolSize = 64

// server owns the store and a bounded free list of per-request sessions.
// Sessions are single-goroutine objects; each in-flight request gets its
// own. A sync.Pool would drop idle sessions without calling Close, leaking
// their epoch-registry slots; the channel free list releases what it
// doesn't keep.
type server struct {
	st       *bigkv.Store
	log      *slog.Logger
	flight   *flight.Recorder // nil unless -debug
	sessions chan *bigkv.Session
}

func (s *server) session() *bigkv.Session {
	select {
	case sess := <-s.sessions:
		return sess
	default:
		return s.st.NewSession()
	}
}

func (s *server) release(sess *bigkv.Session) {
	// Bridge this session's NVM traffic into the registry while we still own
	// the session; /metrics then needs no cross-goroutine stats reads.
	sess.SyncObs()
	select {
	case s.sessions <- sess:
	default:
		sess.Close() // free list full: return the epoch slot instead of parking it
	}
}

// statusWriter captures what the handler sent so the access log can report
// outcome and size without buffering bodies.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// accessLog wraps the mux with the per-request debug-level log line. The
// key is logged as a hash, not plaintext: keys are user data, and the hash
// is exactly what correlates a request with the table's bucket-level events
// in a flight trace.
func (s *server) accessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.log.Enabled(r.Context(), slog.LevelDebug) {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"dur", time.Since(start),
			"bytes", sw.bytes,
		}
		if name := strings.TrimPrefix(r.URL.Path, "/kv/"); name != r.URL.Path && name != "" {
			attrs = append(attrs, "key_hash", fmt.Sprintf("%016x", hashfn.Hash1([]byte(name))))
		}
		s.log.Debug("request", attrs...)
	})
}

func (s *server) kv(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/kv/")
	if name == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	key := []byte(name)
	if len(key) > kv.KeySize {
		http.Error(w, fmt.Sprintf("key longer than %d bytes", kv.KeySize), http.StatusBadRequest)
		return
	}
	sess := s.session()
	defer s.release(sess)

	switch r.Method {
	case http.MethodGet:
		v, ok, err := sess.Get(key)
		switch {
		case err == nil && ok:
			w.Write(v)
		case err == nil:
			http.Error(w, "not found", http.StatusNotFound)
		case errors.Is(err, scheme.ErrContended):
			contended(w)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}

	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, maxValueBytes+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(body) > maxValueBytes {
			http.Error(w, "value too large", http.StatusRequestEntityTooLarge)
			return
		}
		if len(body) == 0 {
			http.Error(w, "empty value", http.StatusBadRequest)
			return
		}
		err = sess.Put(key, body)
		switch {
		case err == nil:
			w.WriteHeader(http.StatusNoContent)
		case errors.Is(err, scheme.ErrContended):
			contended(w)
		case errors.Is(err, scheme.ErrFull), errors.Is(err, vlog.ErrLogFull):
			http.Error(w, "store full", http.StatusInsufficientStorage)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}

	case http.MethodDelete:
		err := sess.Delete(key)
		switch {
		case err == nil:
			w.WriteHeader(http.StatusNoContent)
		case errors.Is(err, scheme.ErrContended):
			contended(w)
		case errors.Is(err, scheme.ErrNotFound):
			http.Error(w, "not found", http.StatusNotFound)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}

	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// maxBatchOps bounds one /batch request; past this the client should send
// more requests, not bigger ones — one giant batch holds its session (and
// its response buffer) for the whole walk.
const maxBatchOps = 4096

// batchOp is one entry in a POST /batch request. Values are base64 in the
// JSON (encoding/json's []byte convention); keys are plain strings, the
// same bytes a /kv/<key> path would carry.
type batchOp struct {
	Op    string `json:"op"` // get | put | delete
	Key   string `json:"key"`
	Value []byte `json:"value,omitempty"`
}

// batchResult is the per-op verdict: status ok | not_found | contended |
// full | error, mirroring the HTTP codes the /kv/ handlers answer with.
type batchResult struct {
	Status string `json:"status"`
	Value  []byte `json:"value,omitempty"`
	Error  string `json:"error,omitempty"`
}

// batch runs a JSON list of operations through the store's batch entry
// points: runs of consecutive same-kind ops become one MultiGet/MultiPut/
// MultiDelete call, so a read-heavy batch gets the up-front hashing and
// epoch-chunked table walks the batch path exists for. The request is
// validated whole before any op executes — a malformed op late in the list
// must not leave earlier ops half-applied.
func (s *server) batch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Ops []batchOp `json:"ops"`
	}
	dec := json.NewDecoder(io.LimitReader(r.Body, int64(maxBatchOps)*(maxValueBytes+256)))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Ops) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	if len(req.Ops) > maxBatchOps {
		http.Error(w, fmt.Sprintf("batch larger than %d ops", maxBatchOps), http.StatusBadRequest)
		return
	}
	for i, op := range req.Ops {
		if op.Key == "" {
			http.Error(w, fmt.Sprintf("op %d: missing key", i), http.StatusBadRequest)
			return
		}
		if len(op.Key) > kv.KeySize {
			http.Error(w, fmt.Sprintf("op %d: key longer than %d bytes", i, kv.KeySize), http.StatusBadRequest)
			return
		}
		switch op.Op {
		case "get", "delete":
		case "put":
			if len(op.Value) == 0 {
				http.Error(w, fmt.Sprintf("op %d: put with empty value", i), http.StatusBadRequest)
				return
			}
			if len(op.Value) > maxValueBytes {
				http.Error(w, fmt.Sprintf("op %d: value larger than %d bytes", i, maxValueBytes), http.StatusBadRequest)
				return
			}
		default:
			http.Error(w, fmt.Sprintf("op %d: unknown op %q (get|put|delete)", i, op.Op), http.StatusBadRequest)
			return
		}
	}

	sess := s.session()
	defer s.release(sess)

	results := make([]batchResult, len(req.Ops))
	for lo := 0; lo < len(req.Ops); {
		kind := req.Ops[lo].Op
		hi := lo + 1
		for hi < len(req.Ops) && req.Ops[hi].Op == kind {
			hi++
		}
		keys := make([][]byte, hi-lo)
		for i := range keys {
			keys[i] = []byte(req.Ops[lo+i].Key)
		}
		switch kind {
		case "get":
			vals, found, errs := sess.MultiGet(keys)
			for i := range keys {
				switch {
				case errs[i] != nil:
					results[lo+i] = opVerdict(errs[i])
				case found[i]:
					results[lo+i] = batchResult{Status: "ok", Value: vals[i]}
				default:
					results[lo+i] = batchResult{Status: "not_found"}
				}
			}
		case "put":
			vals := make([][]byte, hi-lo)
			for i := range vals {
				vals[i] = req.Ops[lo+i].Value
			}
			for i, err := range sess.MultiPut(keys, vals) {
				if err != nil {
					results[lo+i] = opVerdict(err)
				} else {
					results[lo+i] = batchResult{Status: "ok"}
				}
			}
		case "delete":
			for i, err := range sess.MultiDelete(keys) {
				if err != nil {
					results[lo+i] = opVerdict(err)
				} else {
					results[lo+i] = batchResult{Status: "ok"}
				}
			}
		}
		lo = hi
	}

	s.writeBuffered(w, "/batch", "application/json", func(w io.Writer) error {
		return json.NewEncoder(w).Encode(struct {
			Results []batchResult `json:"results"`
		}{results})
	})
}

// opVerdict maps a store error onto the per-op wire statuses.
func opVerdict(err error) batchResult {
	switch {
	case errors.Is(err, scheme.ErrNotFound):
		return batchResult{Status: "not_found"}
	case errors.Is(err, scheme.ErrContended):
		return batchResult{Status: "contended"}
	case errors.Is(err, scheme.ErrFull), errors.Is(err, vlog.ErrLogFull):
		return batchResult{Status: "full"}
	default:
		return batchResult{Status: "error", Error: err.Error()}
	}
}

// contended answers a budget-exhausted operation: the request may succeed on
// retry once the movement burst passes, so say exactly that.
func contended(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	http.Error(w, "contended, retry", http.StatusServiceUnavailable)
}

// writeBuffered renders an exposition into memory before touching the
// response: a render error then becomes a clean 500, not a 200 with a
// truncated body the scraper half-parses. (The old handlers streamed
// straight into the ResponseWriter — by the time rendering failed, the
// status line and part of the body were already on the wire, and the only
// trace of the failure was a server-side log line.)
func (s *server) writeBuffered(w http.ResponseWriter, name, contentType string, render func(io.Writer) error) {
	var buf bytes.Buffer
	if err := render(&buf); err != nil {
		s.log.Error("exposition failed", "endpoint", name, "err", err)
		http.Error(w, "exposition failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", contentType)
	if _, err := w.Write(buf.Bytes()); err != nil {
		// Past the first byte the client just went away; log and move on.
		s.log.Debug("exposition write", "endpoint", name, "err", err)
	}
}

func (s *server) metricsProm(w http.ResponseWriter, _ *http.Request) {
	snap := s.st.MetricsSnapshot()
	s.writeBuffered(w, "/metrics", "text/plain; version=0.0.4; charset=utf-8", snap.WriteProm)
}

func (s *server) metricsJSON(w http.ResponseWriter, _ *http.Request) {
	snap := s.st.MetricsSnapshot()
	s.writeBuffered(w, "/metrics.json", "application/json", snap.WriteJSON)
}

// debugFlight serves the current flight trace. format=text (default) is the
// human rendering, format=json the Chrome trace-event file Perfetto loads,
// format=bin the binary dump hdnhinspect flight reads.
func (s *server) debugFlight(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		http.Error(w, "flight recorder disabled (run with -debug)", http.StatusNotFound)
		return
	}
	d := s.flight.Snapshot()
	switch format := r.URL.Query().Get("format"); format {
	case "", "text":
		s.writeBuffered(w, "/debug/flight", "text/plain; charset=utf-8",
			func(w io.Writer) error { return flight.WriteText(w, d) })
	case "json":
		s.writeBuffered(w, "/debug/flight", "application/json",
			func(w io.Writer) error { return flight.WriteChromeTrace(w, d) })
	case "bin":
		s.writeBuffered(w, "/debug/flight", "application/octet-stream",
			func(w io.Writer) error { return flight.WriteBinary(w, d) })
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (text|json|bin)", format), http.StatusBadRequest)
	}
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	idx := s.st.Index()
	logs := s.st.Logs()
	for i, tbl := range idx.Stats() {
		if idx.NumShards() > 1 {
			fmt.Fprintf(w, "shard %d: ", i)
		}
		fmt.Fprintln(w, tbl)
		lg := logs[i]
		fmt.Fprintf(w, "vlog: %d/%d words live, %d/%d segments free, %d recycles\n",
			lg.LiveWords(), lg.Capacity(), lg.FreeSegments(), lg.Segments(), lg.Recycles())
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdnhserve: "+format+"\n", args...)
	os.Exit(1)
}

// usageErr reports a bad flag value and exits with the usage status.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdnhserve: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

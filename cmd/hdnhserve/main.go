// Command hdnhserve runs an HDNH-indexed store behind two protocol faces:
// an HTTP server (the key-value API plus the observability endpoints) and,
// with -resp, a RESP2-compatible binary listener with per-connection
// pipelining (see docs/PROTOCOL.md) that redis-cli, redis-benchmark and
// existing Redis clients speak unmodified.
//
//	hdnhserve -addr :8080 -resp :6380 -capacity 100000 -mode model
//
// HTTP endpoints (handlers live in internal/serve):
//
//	GET    /kv/<key>      value bytes, or 404
//	PUT    /kv/<key>      body is the value (≤64 KiB); upsert
//	DELETE /kv/<key>      remove the record
//	POST   /batch         JSON batch of get/put/delete ops; runs of
//	       consecutive same-kind ops drain through the store's MultiGet/
//	       MultiPut/MultiDelete, one response entry per op
//	GET    /metrics       Prometheus text exposition (includes the RESP
//	       listener's counters when -resp is set)
//	GET    /metrics.json  the same counters as indented JSON
//	GET    /stats         one-line table and value-log shape summary
//	GET    /healthz       health verdict: 200 ok/degraded (conditions named
//	       in the body), 503 critical or shutting down; ?format=json
//	GET    /readyz        load-balancer probe; 503 the moment shutdown begins
//	GET    /debug/heat    per-shard hot-key sketch (requires -heat)
//	GET    /debug/history ring of 1s snapshot deltas (last ~10 min)
//
// Keys on the /kv/ path are percent-decoded from the escaped request path,
// so URL-hostile keys ("a/b", "..", "%41") round-trip exactly; keys over
// the RESP listener are binary-safe bulk strings and need no escaping.
//
// With -debug the process also attaches a flight recorder to the store and
// serves the live-debug surface (/debug/flight in text, Perfetto-JSON and
// binary formats, plus net/http/pprof), and the structured log drops to
// debug level, which enables the per-request access log.
//
// Contended operations (retry budgets exhausted under sustained movement)
// return 503 with a Retry-After header on HTTP and -CONTENDED on RESP; a
// value log full of live data returns 507 / -FULL.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hdnh/internal/bigkv"
	"hdnh/internal/flight"
	"hdnh/internal/heat"
	"hdnh/internal/kv"
	"hdnh/internal/nvm"
	"hdnh/internal/obs"
	"hdnh/internal/resp"
	"hdnh/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		respAddr = flag.String("resp", "", "RESP (binary wire protocol) listen address, e.g. :6380; empty disables")
		pipeline = flag.Int("pipeline-depth", 128, "RESP per-connection in-flight command queue depth (coalescing window)")
		capacity = flag.Int64("capacity", 100_000, "record capacity the device is sized for")
		mode     = flag.String("mode", "model", "device mode: model | emulate")
		sample   = flag.Uint64("sample", obs.DefaultSampleEvery, "latency-sample one in N operations (1 samples all)")
		logMB    = flag.Int64("logmb", 8, "value-log capacity in MiB (fixed; the GC recycles within it)")
		shards   = flag.Int("shards", 1, "hash-router shard count (power of two; each shard gets its own table, value log and GC worker)")
		debug    = flag.Bool("debug", false, "attach a flight recorder and serve /debug/flight and /debug/pprof; log at debug level (per-request access log)")
		heatOn   = flag.Bool("heat", false, "sample hot keys into a per-shard top-K sketch served at /debug/heat")
		heatTopK = flag.Int("heat-topk", 0, "hot-key sketch entries per shard (0 takes the default)")
		heatEvry = flag.Int("heat-sample", 0, "sample one in N operations into the hot-key sketch (0 takes the default)")
		histPts  = flag.Int("history", 0, "history ring capacity in 1s points served at /debug/history (0 takes the default, ~10 min)")
		drain    = flag.Duration("drain", 0, "after a termination signal, keep serving with /readyz answering 503 for this long so load balancers stop routing here before the listeners close")
	)
	flag.Parse()

	if *capacity <= 0 {
		usageErr("-capacity %d must be positive", *capacity)
	}
	if *sample == 0 {
		usageErr("-sample must be at least 1")
	}
	if *logMB <= 0 {
		usageErr("-logmb %d must be positive", *logMB)
	}
	if *shards < 1 || *shards&(*shards-1) != 0 {
		usageErr("-shards %d must be a power of two", *shards)
	}
	if *pipeline <= 0 {
		usageErr("-pipeline-depth %d must be positive", *pipeline)
	}
	if *heatTopK < 0 || *heatEvry < 0 {
		usageErr("-heat-topk and -heat-sample must be non-negative")
	}
	if *histPts < 0 {
		usageErr("-history %d must be non-negative", *histPts)
	}

	level := new(slog.LevelVar)
	if *debug {
		level.Set(slog.LevelDebug)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	opts := bigkv.DefaultOptions()
	opts.Table.Shards = *shards
	opts.Table.InitBottomSegments = bottomSegments(*capacity, opts.Table.SegmentBuckets)
	opts.Table.Metrics = obs.New(obs.Config{SampleEvery: *sample})
	var fr *flight.Recorder
	if *debug {
		fr = flight.New(flight.Config{})
		opts.Table.Flight = fr
	}
	var heatMon *heat.Monitor
	if *heatOn {
		heatMon = heat.NewMonitor(heat.Config{TopK: *heatTopK, SampleEvery: *heatEvry})
		opts.Table.Heat = heatMon
	}
	opts.SegmentWords = 1 << 14
	opts.Segments = *logMB << 20 / 8 / opts.SegmentWords
	if opts.Segments < 2 {
		opts.Segments = 2
	}

	words := deviceWords(*capacity, opts.SegmentWords*opts.Segments)
	var cfg nvm.Config
	switch *mode {
	case "model":
		cfg = nvm.DefaultConfig(words)
	case "emulate":
		cfg = nvm.EmulateConfig(words)
	default:
		usageErr("unknown mode %q", *mode)
	}

	dev, err := nvm.New(cfg)
	if err != nil {
		fatal("creating device: %v", err)
	}
	st, err := bigkv.Create(dev, opts)
	if err != nil {
		fatal("creating store: %v", err)
	}

	var respMetrics *obs.RESPMetrics
	if *respAddr != "" {
		respMetrics = obs.NewRESPMetrics()
	}
	srv := serve.New(serve.Options{
		Store:         st,
		Log:           logger,
		Flight:        fr,
		Debug:         *debug,
		RESPMetrics:   respMetrics,
		Heat:          heatMon,
		HistoryPoints: *histPts,
		CollectEvery:  time.Second,
	})

	// A configured server, not the bare http.ListenAndServe default: without
	// timeouts one slow-loris client pins a connection goroutine forever, and
	// without Shutdown a SIGTERM kills the process mid-request with the
	// table's clean-shutdown flag never written.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      15 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 2)
	go func() {
		logger.Info("listening", "addr", *addr, "capacity", *capacity,
			"mode", *mode, "log_mib", *logMB, "shards", *shards, "debug", *debug)
		errCh <- httpSrv.ListenAndServe()
	}()

	var respSrv *resp.Server
	if *respAddr != "" {
		respSrv = resp.NewServer(resp.StoreBackend{St: st}, resp.Options{
			PipelineDepth: *pipeline,
			MaxValueBytes: serve.MaxValueBytes,
			MaxKeyBytes:   kv.KeySize,
			Info:          srv.Info,
			Metrics:       respMetrics,
			Flight:        fr,
			Log:           logger,
		})
		l, err := net.Listen("tcp", *respAddr)
		if err != nil {
			st.Close()
			fatal("resp listen: %v", err)
		}
		go func() {
			logger.Info("resp listening", "addr", *respAddr, "pipeline_depth", *pipeline)
			errCh <- respSrv.Serve(l)
		}()
	}

	select {
	case err := <-errCh:
		st.Close()
		fatal("%v", err)
	case <-ctx.Done():
		logger.Info("signal received, draining connections")
		// Flip /readyz and /healthz to 503 before anything stops listening:
		// the load balancer drains this instance while in-flight (and even
		// new) requests still complete. The -drain window is how long we
		// keep serving in that state — net/http's Shutdown closes the
		// listener immediately, so without the window an external probe can
		// never observe the flip.
		srv.BeginShutdown()
		if *drain > 0 {
			logger.Info("draining", "window", *drain)
			time.Sleep(*drain)
		}
		// Teardown order matters: stop both listeners first (requests and
		// pipelines finish, their sessions re-park), then drain the HTTP
		// session pool, then close the store — Close asserts the epoch
		// registry sees every session returned.
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		if respSrv != nil {
			respCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			if err := respSrv.Shutdown(respCtx); err != nil {
				logger.Info("resp shutdown force-closed idle connections", "err", err)
			}
			cancel()
		}
		if err := srv.Close(); err != nil {
			logger.Error("closing session pool", "err", err)
		}
		if err := st.Close(); err != nil {
			logger.Error("closing store", "err", err)
		}
		logger.Info("clean shutdown")
	}
}

// deviceWords mirrors the sizing rule hdnhload and the harness use, plus
// room for the value log.
func deviceWords(records, logWords int64) int64 {
	words := (records+1024)*kv.SlotWords*24 + logWords + nvm.BlockWords
	if words < 1<<20 {
		words = 1 << 20
	}
	if r := words % nvm.BlockWords; r != 0 {
		words += nvm.BlockWords - r
	}
	return words
}

// bottomSegments sizes the initial structure for ~60% load at capacity,
// the same rule the scheme registry applies.
func bottomSegments(hint int64, m int) int {
	slotsWanted := hint * 10 / 6
	perSegment := int64(m) * 8
	segs := (slotsWanted + 3*perSegment - 1) / (3 * perSegment)
	if segs < 1 {
		segs = 1
	}
	return int(segs)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdnhserve: "+format+"\n", args...)
	os.Exit(1)
}

// usageErr reports a bad flag value and exits with the usage status.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdnhserve: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// Command hdnhycsb runs a configurable YCSB-style workload against any
// registered scheme and reports throughput, NVM traffic and (optionally)
// the latency distribution — the free-form counterpart to hdnhbench's fixed
// paper experiments.
//
//	hdnhycsb -scheme HDNH -records 100000 -ops 500000 -threads 8 \
//	         -read 0.5 -update 0.5 -dist scrambled -theta 0.99 -latency
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hdnh/internal/core"
	"hdnh/internal/harness"
	"hdnh/internal/nvm"
	"hdnh/internal/resp/client"
	"hdnh/internal/scheme"
	"hdnh/internal/ycsb"
)

func main() {
	var (
		schemeName = flag.String("scheme", "HDNH", "scheme: "+fmt.Sprint(scheme.Names()))
		records    = flag.Int64("records", 100_000, "preloaded records")
		ops        = flag.Int64("ops", 200_000, "operations")
		threads    = flag.Int("threads", 1, "worker goroutines")
		read       = flag.Float64("read", 1, "proportion of positive reads")
		readNeg    = flag.Float64("readneg", 0, "proportion of negative reads")
		update     = flag.Float64("update", 0, "proportion of updates")
		insert     = flag.Float64("insert", 0, "proportion of inserts")
		del        = flag.Float64("delete", 0, "proportion of deletes")
		batch      = flag.Int("batch", 0, "group reads and deletes into scheme batch ops, this many keys per call (0 = per-key ops; implies -latency off)")
		dist       = flag.String("dist", "uniform", "distribution: uniform | zipfian | scrambled | latest")
		theta      = flag.Float64("theta", 0.99, "zipfian skew")
		seed       = flag.Uint64("seed", 42, "workload seed")
		mode       = flag.String("mode", "emulate", "device mode: model | emulate")
		latency    = flag.Bool("latency", false, "record and print the latency distribution")
		wear       = flag.Bool("wear", false, "track and print the NVM write (wear) distribution")
		shards     = flag.Int("shards", 1, "HDNH hash-router shard count (power of two; HDNH scheme only)")
		respAddr   = flag.String("resp", "", "drive a running hdnhserve -resp listener at this address instead of an in-process store (e.g. 127.0.0.1:6380)")
	)
	flag.Parse()

	if *records <= 0 {
		usageErr("-records %d must be positive", *records)
	}
	if *ops < 0 {
		usageErr("-ops %d must not be negative", *ops)
	}
	if *threads <= 0 {
		usageErr("-threads %d must be positive", *threads)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"read", *read}, {"readneg", *readNeg}, {"update", *update},
		{"insert", *insert}, {"delete", *del},
	} {
		if p.v < 0 || p.v > 1 {
			usageErr("-%s %g outside [0,1]", p.name, p.v)
		}
	}
	if sum := *read + *readNeg + *update + *insert + *del; sum <= 0 {
		usageErr("operation mix sums to %g; pick at least one positive proportion", sum)
	}
	if *theta <= 0 || *theta >= 1 {
		usageErr("-theta %g outside (0,1)", *theta)
	}
	if *batch < 0 {
		usageErr("-batch %d must not be negative", *batch)
	}
	if *batch > 1 && *latency {
		usageErr("-latency records per-op timings; it cannot be combined with -batch")
	}
	if *shards < 1 || *shards&(*shards-1) != 0 {
		usageErr("-shards %d must be a power of two", *shards)
	}
	if *shards > 1 && *schemeName != "HDNH" {
		usageErr("-shards applies only to the HDNH scheme, not %q", *schemeName)
	}
	if *respAddr != "" && (*wear || *shards > 1) {
		usageErr("-resp drives a remote server; -wear and -shards configure an in-process store")
	}

	var d ycsb.Distribution
	switch *dist {
	case "uniform":
		d = ycsb.Uniform
	case "zipfian":
		d = ycsb.Zipfian
	case "scrambled":
		d = ycsb.ScrambledZipfian
	case "latest":
		d = ycsb.Latest
	default:
		usageErr("unknown distribution %q", *dist)
	}
	devMode := nvm.ModeEmulate
	if *mode == "model" {
		devMode = nvm.ModeModel
	} else if *mode != "emulate" {
		usageErr("unknown mode %q", *mode)
	}

	var dev *nvm.Device
	if *wear || *shards > 1 {
		// Build the device here so the wear counters are reachable after
		// the run (and so the router store below has one); mirror the
		// harness's auto-sizing.
		words := (*records + *ops + 1024) * 4 * 24
		if words < 1<<20 {
			words = 1 << 20
		}
		if r := words % nvm.BlockWords; r != 0 {
			words += nvm.BlockWords - r
		}
		cfg := nvm.EmulateConfig(words)
		if devMode == nvm.ModeModel {
			cfg = nvm.DefaultConfig(words)
		}
		cfg.TrackWear = *wear
		var err error
		dev, err = nvm.New(cfg)
		if err != nil {
			fatal("%v", err)
		}
	}

	runOpts := harness.Options{
		Scheme:        *schemeName,
		Records:       *records,
		Ops:           *ops,
		Threads:       *threads,
		Mix:           ycsb.Mix{Read: *read, ReadNegative: *readNeg, Update: *update, Insert: *insert, Delete: *del},
		Dist:          d,
		Theta:         *theta,
		Seed:          *seed,
		DeviceMode:    devMode,
		RecordLatency: *latency,
		BatchSize:     *batch,
	}
	var st scheme.Store
	switch {
	case *respAddr != "":
		// Over-the-wire mode: every worker gets its own connection, batch
		// ops pipeline whole bursts, and writes are upserts (the wire
		// protocol has no insert/update distinction). NVM counters read
		// zero here — scrape the server's /metrics for the device story.
		st = client.NewSchemeStore(client.New(*respAddr, client.Options{}))
		defer st.Close()
		runOpts.Store = st
		runOpts.Scheme = st.Name()
	case *shards > 1:
		// A sharded HDNH store: the registry factory cannot carry a shard
		// count, so build the router directly with the registry's sizing rule.
		topts := core.DefaultOptions()
		topts.Shards = *shards
		topts.InitBottomSegments = core.SizeBottomSegments(*records+*ops, topts.SegmentBuckets)
		r, err := core.CreateRouter(dev, topts)
		if err != nil {
			fatal("%v", err)
		}
		st = core.NewRouterStore(r)
		defer st.Close()
		runOpts.Store = st
		runOpts.Scheme = st.Name() // report HDNH-S<n>, not the flag default
	case dev != nil:
		var err error
		st, err = scheme.Open(*schemeName, dev, *records+*ops)
		if err != nil {
			fatal("%v", err)
		}
		defer st.Close()
		runOpts.Store = st
	}
	res, err := harness.Run(runOpts)
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("scheme      %s\n", res.Scheme)
	fmt.Printf("preload     %d records in %v\n", res.Records, res.PreloadElapsed.Round(time.Millisecond))
	fmt.Printf("ops         %d across %d threads in %v\n", res.Ops, res.Threads, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput  %.4f Mops/s\n", res.ThroughputMops)
	fmt.Printf("misses      %d (expected ErrNotFound/ErrExists)\n", res.Misses)
	fmt.Printf("failures    %d\n", res.Failures)
	fmt.Printf("nvm         %s\n", res.NVM)
	if res.Latency != nil {
		fmt.Printf("latency     %s\n", res.Latency)
		fmt.Printf("\n%s", res.Latency.Table(30))
	}
	if *wear {
		fmt.Printf("%s\n", dev.WearStats())
		for _, hb := range dev.HottestBlocks(5) {
			fmt.Printf("  hot block %8d: %d line writes\n", hb.Block, hb.Writes)
		}
	}
	if res.Failures > 0 {
		os.Exit(1)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdnhycsb: "+format+"\n", args...)
	os.Exit(1)
}

// usageErr reports a bad flag value and exits with the usage status.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdnhycsb: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

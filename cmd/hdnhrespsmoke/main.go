// Command hdnhrespsmoke drives a running hdnhserve -resp listener through a
// short conformance-and-throughput pass, the check CI runs against a freshly
// booted server. It exits non-zero if any reply is malformed or unexpected,
// or if pipelining at -depth fails to beat depth 1 by at least -min-speedup
// (the structural win the protocol exists for; the default 2x is deliberately
// far below the typical gain so only a real regression trips it).
//
//	hdnhrespsmoke -addr 127.0.0.1:6380 -ops 20000 -depth 64
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"hdnh/internal/resp/client"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:6380", "hdnhserve -resp listener address")
		ops     = flag.Int("ops", 20_000, "operations per timed pass")
		depth   = flag.Int("depth", 64, "pipeline depth for the deep pass")
		minGain = flag.Float64("min-speedup", 2, "fail if deep-pass ops/s < this multiple of depth-1")
	)
	flag.Parse()
	if *ops <= 0 || *depth <= 1 {
		fatal("-ops must be positive and -depth > 1")
	}

	cn, err := client.Dial(*addr, 5*time.Second)
	if err != nil {
		fatal("dial %s: %v", *addr, err)
	}
	defer cn.Close()

	if err := conformance(cn); err != nil {
		fatal("conformance: %v", err)
	}
	fmt.Println("conformance ok (ping, binary round-trip, mget, del, typed errors)")

	// Preload the keyspace the timed passes read, through the wire.
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("smoke%06d", i))
	}
	if err := runPass(cn, keys, *ops, *depth, true); err != nil {
		fatal("preload: %v", err)
	}

	shallow, err := timePass(cn, keys, *ops, 1)
	if err != nil {
		fatal("depth-1 pass: %v", err)
	}
	deep, err := timePass(cn, keys, *ops, *depth)
	if err != nil {
		fatal("depth-%d pass: %v", *depth, err)
	}
	speedup := deep / shallow
	fmt.Printf("depth 1:   %10.0f ops/s\ndepth %-3d: %10.0f ops/s\nspeedup:   %.2fx (floor %.1fx)\n",
		shallow, *depth, deep, speedup, *minGain)
	if speedup < *minGain {
		fatal("pipelining speedup %.2fx below the %.1fx floor", speedup, *minGain)
	}
}

// conformance checks one of everything the smoke run relies on.
func conformance(cn *client.Conn) error {
	r, err := cn.Do([]byte("PING"))
	if err != nil {
		return err
	}
	if r.Kind != client.ReplySimple || r.Str != "PONG" {
		return fmt.Errorf("PING = %+v", r)
	}

	key := []byte("smoke\x00bin\r\nkey")
	val := []byte("smoke\x00bin\r\nval")
	if r, err = cn.Do([]byte("SET"), key, val); err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("SET: %w", err)
	}
	if r, err = cn.Do([]byte("GET"), key); err != nil {
		return err
	}
	if r.Kind != client.ReplyBulk || !bytes.Equal(r.Bulk, val) {
		return fmt.Errorf("binary GET = %+v, want %q", r, val)
	}
	if r, err = cn.Do([]byte("MGET"), key, []byte("smoke-absent")); err != nil {
		return err
	}
	if r.Kind != client.ReplyArray || len(r.Array) != 2 ||
		r.Array[0].Kind != client.ReplyBulk || r.Array[1].Kind != client.ReplyNil {
		return fmt.Errorf("MGET = %+v", r)
	}
	if r, err = cn.Do([]byte("DEL"), key); err != nil {
		return err
	}
	if r.Kind != client.ReplyInt || r.Int != 1 {
		return fmt.Errorf("DEL = %+v", r)
	}

	// A protocol-level rejection must come back as -ERR, not a hang or a
	// dropped connection.
	if r, err = cn.Do([]byte("SET"), bytes.Repeat([]byte("k"), 64), []byte("v")); err != nil {
		return err
	}
	if r.Kind != client.ReplyError {
		return fmt.Errorf("oversized key = %+v, want error reply", r)
	}
	// ... and the connection must still be usable afterwards.
	if r, err = cn.Do([]byte("PING")); err != nil || r.Str != "PONG" {
		return fmt.Errorf("ping after error reply = %+v, %v", r, err)
	}
	return nil
}

// runPass pushes ops commands through the connection at the given depth:
// all SETs when loading, else a 7:1 GET:SET mix over the keyspace. Every
// reply is checked, so a protocol error anywhere fails the run.
func runPass(cn *client.Conn, keys [][]byte, ops, depth int, load bool) error {
	val := []byte("smoke-value-0123")
	if load {
		ops = len(keys)
	}
	for lo := 0; lo < ops; lo += depth {
		hi := lo + depth
		if hi > ops {
			hi = ops
		}
		for i := lo; i < hi; i++ {
			k := keys[i%len(keys)]
			var err error
			if load || i%8 == 7 {
				err = cn.Send([]byte("SET"), k, val)
			} else {
				err = cn.Send([]byte("GET"), k)
			}
			if err != nil {
				return err
			}
		}
		if err := cn.Flush(); err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			r, err := cn.Recv()
			if err != nil {
				return err
			}
			switch {
			case r.Kind == client.ReplyError:
				return fmt.Errorf("op %d: %s", i, r.Str)
			case (load || i%8 == 7) && r.Kind != client.ReplySimple:
				return fmt.Errorf("SET reply %d = %+v", i, r)
			case !load && i%8 != 7 && r.Kind != client.ReplyBulk:
				return fmt.Errorf("GET reply %d = %+v", i, r)
			}
		}
	}
	return nil
}

func timePass(cn *client.Conn, keys [][]byte, ops, depth int) (opsPerSec float64, err error) {
	start := time.Now()
	if err := runPass(cn, keys, ops, depth, false); err != nil {
		return 0, err
	}
	return float64(ops) / time.Since(start).Seconds(), nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdnhrespsmoke: "+format+"\n", args...)
	os.Exit(1)
}

// Command hdnhtop is a live terminal view onto a running hdnhserve: one
// refreshing screen combining the health verdict (/healthz), operation
// rates and store shape (/metrics.json), and the hot-key sketch
// (/debug/heat, when the server runs with -heat).
//
//	hdnhtop -addr http://127.0.0.1:8080 -interval 1s
//
// Rates are first differences between successive scrapes, so the first
// frame shows gauges only. -once prints a single frame and exits (no
// escape codes), which is what you want in a script or a bug report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"hdnh/internal/heat"
	"hdnh/internal/obs"
)

// metricsDoc is the subset of /metrics.json hdnhtop renders.
type metricsDoc struct {
	Ops        map[string]map[string]uint64 `json:"ops"`
	Contended  uint64                       `json:"contended"`
	HitRatio   float64                      `json:"hot_hit_ratio"`
	GCWriteAmp float64                      `json:"gc_write_amplification"`
	NVM        struct {
		ReadWords  uint64 `json:"read_words"`
		WriteWords uint64 `json:"write_words"`
	} `json:"nvm"`
	Gauges obs.Gauges        `json:"gauges"`
	RESP   *obs.RESPSnapshot `json:"resp"`
}

// healthDoc is /healthz?format=json.
type healthDoc struct {
	Status     string `json:"status"`
	Conditions []struct {
		Name     string `json:"name"`
		Severity string `json:"severity"`
		Cause    string `json:"cause"`
	} `json:"conditions"`
	ShuttingDown bool `json:"shutting_down"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "hdnhserve HTTP base URL")
		interval = flag.Duration("interval", time.Second, "refresh period")
		once     = flag.Bool("once", false, "print one frame and exit (no screen clearing)")
		topN     = flag.Int("n", 10, "hot-key rows to show")
	)
	flag.Parse()
	base := strings.TrimSuffix(*addr, "/")
	client := &http.Client{Timeout: 5 * time.Second}

	var prev *metricsDoc
	var prevAt time.Time
	for {
		frame, cur, at := render(client, base, prev, prevAt, *topN)
		if *once {
			fmt.Print(frame)
			return
		}
		// Home the cursor and clear to end of screen: repainting in place
		// flickers less than a full-screen erase.
		fmt.Print("\x1b[H\x1b[2J" + frame)
		prev, prevAt = cur, at
		time.Sleep(*interval)
	}
}

// fetchJSON GETs url and decodes the body; non-2xx is an error except 404,
// reported as errNotFound so callers can render "disabled" rather than red.
var errNotFound = fmt.Errorf("not found")

func fetchJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusNotFound {
		return errNotFound
	}
	// /healthz answers 503 with a body once critical; the body is still the
	// document we want.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.Unmarshal(body, v)
}

// render builds one frame and returns it with the scrape it rendered, so the
// caller can difference the next one against it.
func render(client *http.Client, base string, prev *metricsDoc, prevAt time.Time, topN int) (string, *metricsDoc, time.Time) {
	var b strings.Builder
	now := time.Now()
	refresh := "-"
	if !prevAt.IsZero() {
		refresh = time.Since(prevAt).Round(10 * time.Millisecond).String()
	}
	fmt.Fprintf(&b, "hdnhtop — %s    %s    refresh %s\n\n",
		base, now.Format("15:04:05"), refresh)

	var health healthDoc
	if err := fetchJSON(client, base+"/healthz?format=json", &health); err != nil {
		fmt.Fprintf(&b, "health: unreachable (%v)\n", err)
		return b.String(), nil, now
	}
	status := strings.ToUpper(health.Status)
	if health.ShuttingDown {
		status += "  [SHUTTING DOWN]"
	}
	fmt.Fprintf(&b, "health: %s\n", status)
	for _, c := range health.Conditions {
		fmt.Fprintf(&b, "  %-8s %-18s %s\n", c.Severity, c.Name, c.Cause)
	}
	b.WriteString("\n")

	var cur metricsDoc
	if err := fetchJSON(client, base+"/metrics.json", &cur); err != nil {
		fmt.Fprintf(&b, "metrics: unreachable (%v)\n", err)
		return b.String(), nil, now
	}

	// Rates are deltas against the previous scrape; the first frame has no
	// baseline, so rate() answers "-".
	dt := now.Sub(prevAt).Seconds()
	rate := func(curV, prevV uint64) string {
		if prev == nil || dt <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", float64(curV-prevV)/dt)
	}
	opTotal := func(d *metricsDoc, op string) uint64 {
		var n uint64
		for _, v := range d.Ops[op] {
			n += v
		}
		return n
	}
	prevOp := func(op string) uint64 {
		if prev == nil {
			return 0
		}
		return opTotal(prev, op)
	}
	var prevErrs, curErrs uint64
	for op, outs := range cur.Ops {
		curErrs += outs["contended"] + outs["full"]
		if prev != nil {
			prevErrs += prev.Ops[op]["contended"] + prev.Ops[op]["full"]
		}
	}
	fmt.Fprintf(&b, "ops/s   get %-8s insert %-8s update %-8s delete %-8s errors %s\n",
		rate(opTotal(&cur, "get"), prevOp("get")),
		rate(opTotal(&cur, "insert"), prevOp("insert")),
		rate(opTotal(&cur, "update"), prevOp("update")),
		rate(opTotal(&cur, "delete"), prevOp("delete")),
		rate(curErrs, prevErrs))
	var prevR, prevW uint64
	if prev != nil {
		prevR, prevW = prev.NVM.ReadWords, prev.NVM.WriteWords
	}
	fmt.Fprintf(&b, "nvm/s   read %-10s write %-10s words    hot hit %.1f%%   gc amp %.2f\n",
		rate(cur.NVM.ReadWords, prevR), rate(cur.NVM.WriteWords, prevW),
		cur.HitRatio*100, cur.GCWriteAmp)

	g := cur.Gauges
	resizing := "-"
	if g.Resizing > 0 {
		resizing = fmt.Sprintf("yes (%d buckets left)", g.DrainBucketsRemaining)
	}
	shards := g.Shards
	if shards == 0 {
		shards = 1
	}
	fmt.Fprintf(&b, "table   items %-10d load %-6.3f shards %-4d resizing %-22s epoch slots %d\n",
		g.Items, g.LoadFactor, shards, resizing, g.EpochSlotsLive)
	if g.VLogSegments > 0 {
		garbage := 0.0
		if g.VLogUsedWords > 0 {
			garbage = 1 - float64(g.VLogLiveWords)/float64(g.VLogUsedWords)
		}
		fmt.Fprintf(&b, "vlog    free %d/%d segments   garbage %.1f%%\n",
			g.VLogFreeSegments, g.VLogSegments, garbage*100)
	}
	for _, sh := range g.PerShard {
		if sh.Resizing != 0 || sh.LoadFactor >= 0.9 {
			fmt.Fprintf(&b, "  shard %-3d items %-9d load %-6.3f resizing %d (%d left)\n",
				sh.Shard, sh.Items, sh.LoadFactor, sh.Resizing, sh.DrainBucketsRemaining)
		}
	}
	if r := cur.RESP; r != nil {
		var prevCmds, curCmds uint64
		for _, n := range r.Commands {
			curCmds += n
		}
		if prev != nil && prev.RESP != nil {
			for _, n := range prev.RESP.Commands {
				prevCmds += n
			}
		}
		fmt.Fprintf(&b, "resp    conns %-6d in-flight %-6d cmds/s %s\n",
			r.ConnsOpen, r.InFlight, rate(curCmds, prevCmds))
		if r.WriteRuns > 0 {
			// Write batch shape: the run sizes the group-commit path turns
			// into one persist barrier each.
			fmt.Fprintf(&b, "writes  runs %-6d mean %-6.1f p50 %-4d p99 %-4d ops/run\n",
				r.WriteRuns, r.WriteRunLength.MeanNs, r.WriteRunLength.P50Ns, r.WriteRunLength.P99Ns)
		}
	}
	b.WriteString("\n")

	var hs heat.Snapshot
	switch err := fetchJSON(client, base+"/debug/heat", &hs); {
	case err == errNotFound:
		b.WriteString("hot keys: sampling disabled (run hdnhserve with -heat)\n")
	case err != nil:
		fmt.Fprintf(&b, "hot keys: unreachable (%v)\n", err)
	default:
		type row struct {
			heat.KeyCount
			shard int
		}
		var rows []row
		for _, sh := range hs.Shards {
			for _, kc := range sh.Top {
				rows = append(rows, row{kc, sh.Shard})
			}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].Count > rows[j].Count })
		if len(rows) > topN {
			rows = rows[:topN]
		}
		fmt.Fprintf(&b, "hot keys (1 in %d sampled, top %d per shard)\n", hs.SampleEvery, hs.TopK)
		fmt.Fprintf(&b, "  %-40s %5s %12s %10s\n", "KEY", "SHARD", "~COUNT", "±ERR")
		for _, r := range rows {
			key := r.Key
			if len(key) > 40 {
				key = key[:37] + "..."
			}
			fmt.Fprintf(&b, "  %-40s %5d %12d %10d\n", printable(key), r.shard, r.Count, r.Err)
		}
		if len(rows) == 0 {
			b.WriteString("  (no sampled traffic yet)\n")
		}
	}
	return b.String(), &cur, now
}

// printable replaces control bytes so a binary key cannot corrupt the
// terminal it is being displayed on.
func printable(s string) string {
	return strings.Map(func(r rune) rune {
		if r < 0x20 || r == 0x7f {
			return '.'
		}
		return r
	}, s)
}

func init() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hdnhtop [-addr URL] [-interval D] [-once] [-n N]\n")
		flag.PrintDefaults()
	}
}

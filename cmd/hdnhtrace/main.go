// Command hdnhtrace records workload traces and replays them against any
// scheme — capture once, compare everywhere.
//
//	hdnhtrace record -out a.trace -records 100000 -ops 500000 \
//	                 -read 0.5 -update 0.5 -dist scrambled -theta 0.99
//	hdnhtrace replay -in a.trace -scheme CCEH -records 100000 -threads 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hdnh/internal/harness"
	"hdnh/internal/kv"
	"hdnh/internal/nvm"
	"hdnh/internal/scheme"
	"hdnh/internal/trace"
	"hdnh/internal/ycsb"
)

func main() {
	if len(os.Args) < 2 {
		fatal("usage: hdnhtrace record|replay [flags]")
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		fatal("unknown subcommand %q (want record or replay)", os.Args[1])
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		out     = fs.String("out", "workload.trace", "output trace file")
		records = fs.Int64("records", 100_000, "record keyspace size")
		ops     = fs.Int64("ops", 200_000, "operations to record")
		read    = fs.Float64("read", 0.5, "read proportion")
		readNeg = fs.Float64("readneg", 0, "negative-read proportion")
		update  = fs.Float64("update", 0.5, "update proportion")
		insert  = fs.Float64("insert", 0, "insert proportion")
		del     = fs.Float64("delete", 0, "delete proportion")
		rmw     = fs.Float64("rmw", 0, "read-modify-write proportion")
		dist    = fs.String("dist", "scrambled", "uniform | zipfian | scrambled | latest")
		theta   = fs.Float64("theta", 0.99, "zipfian skew")
		seed    = fs.Uint64("seed", 42, "workload seed")
	)
	_ = fs.Parse(args)

	gen, err := ycsb.New(ycsb.Config{
		RecordCount:  *records,
		Mix:          ycsb.Mix{Read: *read, ReadNegative: *readNeg, Update: *update, Insert: *insert, Delete: *del, ReadModifyWrite: *rmw},
		Distribution: parseDist(*dist),
		Theta:        *theta,
		Seed:         *seed,
	})
	if err != nil {
		fatal("%v", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	n, err := trace.Capture(f, gen, 0, *ops)
	if err != nil {
		fatal("capturing: %v", err)
	}
	if err := f.Close(); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("recorded %d ops (records=%d dist=%s theta=%v seed=%d) to %s\n",
		n, *records, *dist, *theta, *seed, *out)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		in         = fs.String("in", "workload.trace", "input trace file")
		schemeName = fs.String("scheme", "HDNH", "scheme: "+fmt.Sprint(scheme.Names()))
		records    = fs.Int64("records", 100_000, "records to preload before replay")
		threads    = fs.Int("threads", 1, "replay goroutines")
		mode       = fs.String("mode", "emulate", "device mode: model | emulate")
		latency    = fs.Bool("latency", false, "report the latency distribution")
	)
	_ = fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		fatal("%v", err)
	}
	ops, err := trace.ReadAll(f)
	f.Close()
	if err != nil {
		fatal("reading trace: %v", err)
	}

	words := (*records + int64(len(ops)) + 1024) * kv.SlotWords * 24
	if words%nvm.BlockWords != 0 {
		words += nvm.BlockWords - words%nvm.BlockWords
	}
	cfg := nvm.EmulateConfig(words)
	if *mode == "model" {
		cfg = nvm.DefaultConfig(words)
	}
	dev, err := nvm.New(cfg)
	if err != nil {
		fatal("%v", err)
	}
	st, err := scheme.Open(*schemeName, dev, *records+int64(len(ops)))
	if err != nil {
		fatal("%v", err)
	}
	defer st.Close()
	if err := harness.Preload(st, *records, 4); err != nil {
		fatal("preload: %v", err)
	}

	res, err := harness.ReplayTrace(st, ops, *threads, *latency)
	if err != nil {
		fatal("replay: %v", err)
	}
	fmt.Printf("scheme      %s\n", res.Scheme)
	fmt.Printf("replayed    %d ops across %d threads in %v\n", res.Ops, res.Threads, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput  %.4f Mops/s\n", res.ThroughputMops)
	fmt.Printf("misses      %d, failures %d\n", res.Misses, res.Failures)
	fmt.Printf("nvm         %s\n", res.NVM)
	if res.Latency != nil {
		fmt.Printf("latency     %s\n", res.Latency)
	}
	if res.Failures > 0 {
		os.Exit(1)
	}
}

func parseDist(s string) ycsb.Distribution {
	switch s {
	case "uniform":
		return ycsb.Uniform
	case "zipfian":
		return ycsb.Zipfian
	case "scrambled":
		return ycsb.ScrambledZipfian
	case "latest":
		return ycsb.Latest
	default:
		fatal("unknown distribution %q", s)
		return ycsb.Uniform
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdnhtrace: "+format+"\n", args...)
	os.Exit(1)
}

// Command hdnhrecover demonstrates HDNH crash recovery end to end: it loads
// a table on a strict-mode device, simulates a power failure (optionally in
// the middle of a resize), recovers, verifies every committed record, and
// prints the Table 1-style recovery timing breakdown.
//
//	hdnhrecover -n 50000
//	hdnhrecover -n 50000 -crash-mid-resize
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hdnh/internal/core"
	"hdnh/internal/kv"
	"hdnh/internal/nvm"
	"hdnh/internal/ycsb"
)

func main() {
	var (
		n         = flag.Int64("n", 50_000, "records to load before the crash")
		midResize = flag.Bool("crash-mid-resize", false, "arm the crash during a table expansion")
		evictProb = flag.Float64("evict-prob", 0.5, "probability an unflushed cache line survives the crash")
		seed      = flag.Uint64("seed", 1, "crash eviction seed")
	)
	flag.Parse()

	words := (*n + 1024) * kv.SlotWords * 24
	if words < 1<<20 {
		words = 1 << 20
	}
	if r := words % nvm.BlockWords; r != 0 {
		words += nvm.BlockWords - r
	}
	cfg := nvm.StrictConfig(words)
	cfg.EvictProb = *evictProb
	cfg.Seed = *seed
	dev, err := nvm.New(cfg)
	if err != nil {
		fatal("device: %v", err)
	}

	opts := core.DefaultOptions()
	opts.SyncWrites = false // deterministic flush stream in strict mode
	tbl, err := core.Create(dev, opts)
	if err != nil {
		fatal("create: %v", err)
	}
	s := tbl.NewSession()

	fmt.Printf("loading %d records on a strict-mode device...\n", *n)
	loaded := int64(0)
	armed := false
	for i := int64(0); i < *n; i++ {
		if *midResize && !armed && i == *n*3/4 {
			// Arm a crash image a few hundred flushes ahead: at this load
			// point expansions are frequent, so the snapshot usually lands
			// inside one.
			if err := dev.SetCrashAfterFlushes(300); err != nil {
				fatal("arming crash: %v", err)
			}
			armed = true
		}
		if err := s.Insert(ycsb.RecordKey(i), ycsb.ValueFor(i)); err != nil {
			fatal("insert %d: %v", i, err)
		}
		loaded++
	}

	// Take the post-crash device state.
	var crashed *nvm.Device
	if *midResize {
		img := dev.CrashImage()
		if img == nil {
			fmt.Println("note: no expansion happened after arming; crashing at end of load instead")
			if err := dev.Crash(); err != nil {
				fatal("crash: %v", err)
			}
			crashed = dev
		} else {
			crashed, err = nvm.FromImage(cfg, img)
			if err != nil {
				fatal("booting crash image: %v", err)
			}
			fmt.Println("crash image captured mid-run (armed during resize window)")
		}
	} else {
		if err := dev.Crash(); err != nil {
			fatal("crash: %v", err)
		}
		crashed = dev
	}
	fmt.Printf("power failure simulated (unflushed lines survive with p=%.2f)\n", *evictProb)

	start := time.Now()
	recovered, err := core.Open(crashed, core.DefaultOptions())
	if err != nil {
		fatal("recovery: %v", err)
	}
	defer recovered.Close()
	rs := recovered.LastRecovery()

	fmt.Printf("\nrecovery complete in %v\n", time.Since(start).Round(time.Microsecond))
	fmt.Printf("  OCF rebuild       %v\n", rs.OCFRebuild.Round(time.Microsecond))
	fmt.Printf("  hot table rebuild %v\n", rs.HotRebuild.Round(time.Microsecond))
	fmt.Printf("  total             %v\n", rs.Total.Round(time.Microsecond))
	fmt.Printf("  items recovered   %d\n", rs.Items)
	fmt.Printf("  resumed rehash    %v\n", rs.ResumedRehash)
	fmt.Printf("  duplicates fixed  %v\n", rs.DuplicatesResolved)

	// Verify: all records must form a committed prefix (only the very last
	// in-flight insert may be missing in a mid-run crash image).
	rsess := recovered.NewSession()
	present := int64(0)
	for i := int64(0); i < loaded; i++ {
		v, ok := rsess.Get(ycsb.RecordKey(i))
		if !ok {
			break
		}
		if v != ycsb.ValueFor(i) {
			fatal("record %d corrupt after recovery", i)
		}
		present++
	}
	for i := present; i < loaded; i++ {
		if _, ok := rsess.Get(ycsb.RecordKey(i)); ok {
			fatal("non-prefix survival: record %d present but %d missing", i, present)
		}
	}
	fmt.Printf("\nverified: %d of %d records survive as a clean prefix ✓\n", present, loaded)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdnhrecover: "+format+"\n", args...)
	os.Exit(1)
}

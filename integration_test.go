package hdnh_test

import (
	"bytes"
	"fmt"
	"testing"

	"hdnh"
	"hdnh/internal/harness"
	"hdnh/internal/kv"
	"hdnh/internal/nvm"
	"hdnh/internal/scheme"
	"hdnh/internal/trace"
	"hdnh/internal/ycsb"
)

// TestEndToEndPipeline exercises the whole system the way a user would:
// record a workload trace, replay it against two schemes on fresh devices,
// crash the HDNH device mid-life, recover, and audit the result.
func TestEndToEndPipeline(t *testing.T) {
	const records = 4000
	const ops = 8000

	// 1. Record a reproducible trace.
	gen, err := ycsb.New(ycsb.Config{
		RecordCount:  records,
		Mix:          ycsb.Mix{Read: 0.55, Update: 0.25, Insert: 0.1, Delete: 0.05, ReadNegative: 0.05},
		Distribution: ycsb.ScrambledZipfian,
		Theta:        0.99,
		Seed:         1234,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.Capture(&buf, gen, 0, ops); err != nil {
		t.Fatal(err)
	}
	opsList, err := trace.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(opsList) != ops {
		t.Fatalf("trace has %d ops", len(opsList))
	}

	// 2. Replay the identical trace against HDNH and CCEH. One replay
	// worker: the cross-scheme outcome-equality check below is only sound
	// when same-key ops stay ordered, and ReplayTrace chunks the stream
	// across workers without regard to keys. Concurrent correctness is
	// covered by the internal/core concurrency and contention tests.
	results := map[string]*harness.Result{}
	for _, name := range []string{"HDNH", "CCEH"} {
		dev, err := nvm.New(nvm.DefaultConfig(1 << 22))
		if err != nil {
			t.Fatal(err)
		}
		st, err := scheme.Open(name, dev, records+ops)
		if err != nil {
			t.Fatal(err)
		}
		if err := harness.Preload(st, records, 2); err != nil {
			t.Fatal(err)
		}
		res, err := harness.ReplayTrace(st, opsList, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failures != 0 {
			t.Fatalf("%s replay failures: %d", name, res.Failures)
		}
		results[name] = res
		st.Close()
	}
	// Identical traces must produce identical logical outcomes.
	if results["HDNH"].Misses != results["CCEH"].Misses {
		t.Fatalf("schemes disagree on trace outcome: HDNH %d misses, CCEH %d",
			results["HDNH"].Misses, results["CCEH"].Misses)
	}
	// And HDNH must touch dramatically less NVM for reads.
	if hr, cr := results["HDNH"].NVM.MediaBlockReads, results["CCEH"].NVM.MediaBlockReads; hr*2 > cr {
		t.Fatalf("HDNH media reads (%d) not well below CCEH's (%d)", hr, cr)
	}

	// 3. Crash/recover cycle through the public facade.
	cfg := hdnh.StrictDeviceConfig(1 << 22)
	cfg.EvictProb = 0.5
	dev, err := hdnh.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := hdnh.DefaultOptions()
	opts.SyncWrites = false
	table, err := hdnh.Create(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := table.NewSession()
	for i := 0; i < 2000; i++ {
		if err := s.Insert(hdnh.Key(fmt.Sprintf("e2e-%05d", i)), hdnh.Value(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	table.StopBackground() // quiesce drain goroutines; no clean-shutdown flag
	if err := dev.Crash(); err != nil {
		t.Fatal(err)
	}
	recovered, err := hdnh.Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if recovered.Count() != 2000 {
		t.Fatalf("recovered %d of 2000", recovered.Count())
	}
	if errs := recovered.CheckInvariants(); len(errs) != 0 {
		t.Fatalf("post-recovery invariants: %v", errs[0])
	}
	rs := recovered.NewSession()
	if visited := rs.Scan(func(k kv.Key, v kv.Value) bool { return true }); visited != 2000 {
		t.Fatalf("Scan visited %d of 2000 recovered records", visited)
	}
}

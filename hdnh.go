// Package hdnh is the public facade of the HDNH reproduction: a
// read-efficient, write-optimized hash table for hybrid DRAM-NVM memory
// (Zhu et al., ICPP '21), together with the emulated persistent-memory
// device it runs on.
//
// Quick start:
//
//	dev, err := hdnh.NewDevice(hdnh.DeviceConfig(1 << 22))
//	table, err := hdnh.Create(dev, hdnh.DefaultOptions())
//	defer table.Close()
//	s := table.NewSession() // one per goroutine
//	err = s.Insert(hdnh.Key("user1"), hdnh.Value("v1"))
//	v, ok := s.Get(hdnh.Key("user1"))
//
// The heavy lifting lives in the internal packages:
//
//   - internal/core — the HDNH scheme (non-volatile table, OCF, hot table,
//     RAFL, synchronous writes, optimistic concurrency, resize, recovery)
//   - internal/nvm — the Optane-behaviour device emulation
//   - internal/{levelhash,cceh,pathhash} — the paper's baselines
//   - internal/harness — regenerates every figure and table of the paper
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results.
package hdnh

import (
	"hdnh/internal/core"
	"hdnh/internal/kv"
	"hdnh/internal/nvm"
	"hdnh/internal/obs"
	"hdnh/internal/scheme"
)

// Re-exported core types. Table is safe for concurrent use via per-goroutine
// Sessions.
type (
	// Table is an HDNH hash table.
	Table = core.Table
	// Session is a per-goroutine handle on a Table.
	Session = core.Session
	// Router splits the keyspace across Options.Shards independent tables;
	// create one with CreateRouter when a single table's resize and lock
	// domains become the bottleneck.
	Router = core.Router
	// RouterSession is a per-goroutine handle on a Router.
	RouterSession = core.RouterSession
	// Options configures a Table.
	Options = core.Options
	// Replacer selects the hot-table replacement strategy.
	Replacer = core.Replacer
	// RecoveryStats describes what Open rebuilt.
	RecoveryStats = core.RecoveryStats
	// Device is the emulated NVM device.
	Device = nvm.Device
	// DeviceOptions configures the emulated device.
	DeviceOptions = nvm.Config
	// Metrics is an opt-in metrics registry; attach one via Options.Metrics
	// and scrape it with Table.MetricsSnapshot. See docs/OBSERVABILITY.md.
	Metrics = obs.Metrics
	// MetricsConfig configures a Metrics registry.
	MetricsConfig = obs.Config
	// MetricsSnapshot is a point-in-time copy of a registry's counters.
	MetricsSnapshot = obs.Snapshot
)

// Sentinel errors returned by Session operations; test with errors.Is.
var (
	// ErrNotFound: the key was conclusively absent.
	ErrNotFound = scheme.ErrNotFound
	// ErrExists: Insert found the key already present.
	ErrExists = scheme.ErrExists
	// ErrFull: no free slot even after resizing was ruled out.
	ErrFull = scheme.ErrFull
	// ErrContended: the lookup retry budget exhausted under sustained record
	// movement — the key's presence could not be decided. Transient; retry.
	// (Get never returns it: it retries internally and never false-misses.)
	ErrContended = scheme.ErrContended
)

// NewMetrics creates a metrics registry to attach via Options.Metrics.
func NewMetrics(cfg MetricsConfig) *Metrics { return obs.New(cfg) }

// Replacement strategies.
const (
	RAFL = core.ReplacerRAFL
	LRU  = core.ReplacerLRU
)

// DefaultOptions returns the paper's tuned HDNH configuration (16KB
// segments, 4-slot hot buckets, RAFL, synchronous writes).
func DefaultOptions() Options { return core.DefaultOptions() }

// DeviceConfig returns a fast accounting-only device configuration with the
// given capacity in 8-byte words.
func DeviceConfig(words int64) DeviceOptions { return nvm.DefaultConfig(words) }

// EmulatedDeviceConfig returns a device configuration with the calibrated
// Optane latency/bandwidth profile enabled.
func EmulatedDeviceConfig(words int64) DeviceOptions { return nvm.EmulateConfig(words) }

// StrictDeviceConfig returns a device configuration that tracks cache-line
// persistence for crash-consistency testing.
func StrictDeviceConfig(words int64) DeviceOptions { return nvm.StrictConfig(words) }

// NewDevice creates an emulated NVM device.
func NewDevice(cfg DeviceOptions) (*Device, error) { return nvm.New(cfg) }

// DeviceFromImage boots a device from a previously persisted image (a crash
// snapshot or a SaveImage file), as a machine reboot would.
func DeviceFromImage(cfg DeviceOptions, image []uint64) (*Device, error) {
	return nvm.FromImage(cfg, image)
}

// Create formats a fresh table on the device.
func Create(dev *Device, opts Options) (*Table, error) { return core.Create(dev, opts) }

// Open recovers the table stored on the device (replays interrupted
// resizes, rebuilds the OCF and hot table).
func Open(dev *Device, opts Options) (*Table, error) { return core.Open(dev, opts) }

// OpenOrCreate opens an existing table or creates a fresh one.
func OpenOrCreate(dev *Device, opts Options) (*Table, error) { return core.OpenOrCreate(dev, opts) }

// CreateRouter formats Options.Shards independent tables behind a hash
// router. Shards=0 or 1 lays the device out byte-identically to Create.
func CreateRouter(dev *Device, opts Options) (*Router, error) { return core.CreateRouter(dev, opts) }

// OpenRouter recovers a table or sharded router from the device. The
// persisted shard count is authoritative: Options.Shards=0 adopts it, any
// other mismatch fails with a clear error.
func OpenRouter(dev *Device, opts Options) (*Router, error) { return core.OpenRouter(dev, opts) }

// OpenOrCreateRouter opens the router stored on the device or creates a
// fresh one.
func OpenOrCreateRouter(dev *Device, opts Options) (*Router, error) {
	return core.OpenOrCreateRouter(dev, opts)
}

// Key builds a fixed-size key from a string of at most 16 bytes; longer
// input panics (use kv.MakeKey for the error-returning form).
func Key(s string) kv.Key { return kv.MustKey([]byte(s)) }

// Value builds a fixed-size value from a string of at most 15 bytes; longer
// input panics (use kv.MakeValue for the error-returning form).
func Value(s string) kv.Value { return kv.MustValue([]byte(s)) }

module hdnh

go 1.22

# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... -count=1

race:
	$(GO) test -race ./... -count=1

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper figure/table plus the extensions (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/hdnhbench -all -records 50000 -ops 100000 -mode emulate

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hotcache
	$(GO) run ./examples/durability
	$(GO) run ./examples/concurrent

clean:
	$(GO) clean ./...

# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench bench-json experiments examples flight-demo fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... -count=1

race:
	$(GO) test -race ./... -count=1

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable figure runs (the BENCH_*.json comparisons are built from
# these): fig13 covers the read path, batchscale the MultiGet sweep.
bench-json:
	$(GO) run ./cmd/hdnhbench -fig 13 -records 50000 -ops 100000 -mode emulate -json bench-fig13.json
	$(GO) run ./cmd/hdnhbench -fig batchscale -records 50000 -ops 100000 -mode emulate -json bench-batchscale.json

# Regenerate every paper figure/table plus the extensions (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/hdnhbench -all -records 50000 -ops 100000 -mode emulate

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hotcache
	$(GO) run ./examples/durability
	$(GO) run ./examples/concurrent

clean:
	$(GO) clean ./...

# Emit a Perfetto-loadable flight trace from a mixed churn/resize/GC/recovery
# workload (open flight-demo.json at https://ui.perfetto.dev).
flight-demo:
	$(GO) run ./cmd/hdnhbench -fig flightdemo -records 20000 -ops 40000 -mode model -flight-out flight-demo.json

# Short fuzz passes over the two binary readers (CI runs the same smoke).
fuzz:
	$(GO) test -fuzz=FuzzReader -fuzztime=30s ./internal/trace/
	$(GO) test -fuzz=FuzzFlightReader -fuzztime=30s ./internal/flight/

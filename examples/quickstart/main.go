// Quickstart: create an emulated NVM device, build an HDNH table on it,
// and run the basic operations through the public API.
package main

import (
	"fmt"
	"log"

	"hdnh"
)

func main() {
	// An emulated persistent-memory device: capacity is in 8-byte words, so
	// this is a 32 MB module. DeviceConfig counts NVM traffic; swap in
	// EmulatedDeviceConfig to also pay Optane-like latencies.
	dev, err := hdnh.NewDevice(hdnh.DeviceConfig(1 << 22))
	if err != nil {
		log.Fatal(err)
	}

	// The paper's tuned configuration: 16KB segments, a DRAM hot table with
	// 4-slot buckets and RAFL replacement, background synchronous writes.
	table, err := hdnh.Create(dev, hdnh.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer table.Close()

	// Sessions are per-goroutine handles; all operations go through one.
	s := table.NewSession()

	if err := s.Insert(hdnh.Key("alice"), hdnh.Value("engineer")); err != nil {
		log.Fatal(err)
	}
	if err := s.Insert(hdnh.Key("bob"), hdnh.Value("designer")); err != nil {
		log.Fatal(err)
	}

	if v, ok := s.Get(hdnh.Key("alice")); ok {
		fmt.Printf("alice     -> %s\n", v)
	}

	if err := s.Update(hdnh.Key("bob"), hdnh.Value("manager")); err != nil {
		log.Fatal(err)
	}
	if v, ok := s.Get(hdnh.Key("bob")); ok {
		fmt.Printf("bob       -> %s\n", v)
	}

	if _, ok := s.Get(hdnh.Key("carol")); !ok {
		// Negative search: the OCF answers this from DRAM fingerprints —
		// check the session stats to see that (almost) no NVM was touched.
		fmt.Println("carol     -> not found (filtered by the OCF)")
	}

	if err := s.Delete(hdnh.Key("alice")); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("records   = %d, load factor = %.4f\n", table.Count(), table.LoadFactor())
	fmt.Printf("NVM usage = %v\n", s.NVMStats())
}

// Durability: a write-ahead-style session on a strict-mode device that is
// crashed at a random moment, then recovered — demonstrating the paper's
// §3.7 recovery path and the crash-atomic slot commit protocol.
//
// The strict device models the CPU cache: stores are volatile until flushed
// (CLWB + fence), and on power failure an arbitrary subset of unflushed
// cache lines may or may not have been evicted to the media.
package main

import (
	"fmt"
	"log"

	"hdnh"
	"hdnh/internal/ycsb"
)

func main() {
	cfg := hdnh.StrictDeviceConfig(1 << 22)
	cfg.EvictProb = 0.5 // each dirty line survives the crash with p=0.5
	dev, err := hdnh.NewDevice(cfg)
	if err != nil {
		log.Fatal(err)
	}

	opts := hdnh.DefaultOptions()
	opts.SyncWrites = false // keep the flush stream deterministic
	table, err := hdnh.Create(dev, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Arm a crash image: the device snapshots its persisted state at the
	// 5000th cache-line flush, exactly as a power cut there would leave it.
	const crashAtFlush = 5000
	if err := dev.SetCrashAfterFlushes(crashAtFlush); err != nil {
		log.Fatal(err)
	}

	s := table.NewSession()
	const n = 5000
	fmt.Printf("writing %d records; power will fail at flush #%d...\n", n, crashAtFlush)
	for i := int64(0); i < n; i++ {
		if err := s.Insert(ycsb.RecordKey(i), ycsb.ValueFor(i)); err != nil {
			log.Fatal(err)
		}
		if i%2 == 0 {
			if err := s.Update(ycsb.RecordKey(i), ycsb.ValueFor(i+1000000)); err != nil {
				log.Fatal(err)
			}
		}
	}

	img := dev.CrashImage()
	if img == nil {
		log.Fatal("run finished before the crash point — increase n")
	}
	dev2, err := hdnh.DeviceFromImage(cfg, img)
	if err != nil {
		log.Fatal(err)
	}

	recovered, err := hdnh.Open(dev2, hdnh.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()
	rs := recovered.LastRecovery()
	fmt.Printf("recovered %d records in %v (OCF %v, hot table %v, torn updates fixed: %d)\n",
		rs.Items, rs.Total.Round(0), rs.OCFRebuild.Round(0), rs.HotRebuild.Round(0), rs.DuplicatesResolved)

	// Verify the crash-consistency contract: every surviving record holds
	// either its insert-time or its update-time value — never a torn mix —
	// and the survivors form a prefix of the acknowledged operations.
	rsess := recovered.NewSession()
	var present int64
	for i := int64(0); i < n; i++ {
		v, ok := rsess.Get(ycsb.RecordKey(i))
		if !ok {
			break
		}
		old, updated := ycsb.ValueFor(i), ycsb.ValueFor(i+1000000)
		if v != old && v != updated {
			log.Fatalf("record %d has a torn value %q", i, v.String())
		}
		present++
	}
	fmt.Printf("verified: first %d records intact, none torn ✓\n", present)
}

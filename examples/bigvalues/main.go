// Bigvalues: HDNH as the index of a WiscKey-style key-value-separated
// store (extension; the paper cites WiscKey as [19]). Values of any size
// live in a crash-safe append-only NVM log; the HDNH slot holds either the
// value inline (≤ 13 bytes) or its 8-byte log address — so point lookups
// keep HDNH's one-fingerprint-probe read path regardless of value size.
package main

import (
	"bytes"
	"fmt"
	"log"

	"hdnh/internal/bigkv"
	"hdnh/internal/nvm"
)

func main() {
	dev, err := nvm.New(nvm.DefaultConfig(1 << 22))
	if err != nil {
		log.Fatal(err)
	}
	st, err := bigkv.Create(dev, bigkv.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	s := st.NewSession()

	// Small values stay inline in the HDNH slot.
	if err := s.Put([]byte("motto"), []byte("read-efficient")); err != nil {
		log.Fatal(err)
	}
	// Large values go to the value log; the slot stores the address.
	document := bytes.Repeat([]byte("HDNH separates keys from values. "), 300) // ~10KB
	if err := s.Put([]byte("paper:intro"), document); err != nil {
		log.Fatal(err)
	}

	v, ok, err := s.Get([]byte("motto"))
	if err != nil || !ok {
		log.Fatal("motto lost")
	}
	fmt.Printf("motto        -> %q (inline)\n", v)

	v, ok, err = s.Get([]byte("paper:intro"))
	if err != nil || !ok {
		log.Fatal("document lost")
	}
	fmt.Printf("paper:intro  -> %d bytes via the value log\n", len(v))

	// Overwrites are crash-safe: the new value commits in the log before
	// the index flips to it.
	if err := s.Put([]byte("paper:intro"), []byte("(retracted)")); err != nil {
		log.Fatal(err)
	}
	v, _, _ = s.Get([]byte("paper:intro"))
	fmt.Printf("after update -> %q\n", v)

	fmt.Printf("\nindex: %s\n", st.Table().Stats())
	fmt.Printf("log:   %d of %d words used\n", st.Log().UsedWords(), st.Log().Capacity())
}

// Bigvalues: HDNH as the index of a WiscKey-style key-value-separated
// store (extension; the paper cites WiscKey as [19]). Values of any size
// live in a crash-safe segmented NVM log; the HDNH slot holds either the
// value inline (≤ 13 bytes) or its log address — so point lookups keep
// HDNH's one-fingerprint-probe read path regardless of value size. Space
// freed by overwrites and deletes is reclaimed online by a background GC
// that recycles segments in place, so the log never grows past its fixed
// footprint.
package main

import (
	"bytes"
	"fmt"
	"log"

	"hdnh/internal/bigkv"
	"hdnh/internal/nvm"
)

func main() {
	dev, err := nvm.New(nvm.DefaultConfig(1 << 22))
	if err != nil {
		log.Fatal(err)
	}
	opts := bigkv.DefaultOptions()
	// A deliberately small log (1 MB) so the churn below laps it and the
	// online GC has to recycle segments.
	opts.SegmentWords = 1 << 12
	opts.Segments = 32
	st, err := bigkv.Create(dev, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	s := st.NewSession()

	// Small values stay inline in the HDNH slot.
	if err := s.Put([]byte("motto"), []byte("read-efficient")); err != nil {
		log.Fatal(err)
	}
	// Large values go to the value log; the slot stores the address.
	document := bytes.Repeat([]byte("HDNH separates keys from values. "), 300) // ~10KB
	if err := s.Put([]byte("paper:intro"), document); err != nil {
		log.Fatal(err)
	}

	v, ok, err := s.Get([]byte("motto"))
	if err != nil || !ok {
		log.Fatal("motto lost")
	}
	fmt.Printf("motto        -> %q (inline)\n", v)

	v, ok, err = s.Get([]byte("paper:intro"))
	if err != nil || !ok {
		log.Fatal("document lost")
	}
	fmt.Printf("paper:intro  -> %d bytes via the value log\n", len(v))

	// Overwrites are crash-safe: the new value commits in the log before
	// the index flips to it.
	if err := s.Put([]byte("paper:intro"), []byte("(retracted)")); err != nil {
		log.Fatal(err)
	}
	v, _, _ = s.Get([]byte("paper:intro"))
	fmt.Printf("after update -> %q\n", v)

	// Churn far past the log's capacity: the GC recycles dead segments in
	// place, so appended bytes can exceed the fixed footprint many times.
	for gen := 0; gen < 2000; gen++ {
		doc := bytes.Repeat([]byte{byte(gen)}, 2048)
		if err := s.Put([]byte("paper:intro"), doc); err != nil {
			log.Fatalf("overwrite generation %d: %v", gen, err)
		}
	}
	lg := st.Log()
	fmt.Printf("\nchurn: appended %.1f MB through a %.1f MB log (%d segment recycles)\n",
		float64(lg.AppendedWords())*8/1e6, float64(lg.Capacity())*8/1e6, lg.Recycles())

	fmt.Printf("\nindex: %s\n", st.Index().Shard(0).Stats())
	fmt.Printf("log:   %d of %d words live, %d of %d segments free\n",
		lg.LiveWords(), lg.Capacity(), lg.FreeSegments(), lg.Segments())
}

// Concurrent: a multi-goroutine mixed workload exercising the paper's
// fine-grained optimistic concurrency — writers take per-slot locks in the
// DRAM filter, readers run lock-free with version validation, and the only
// global serialisation is a table expansion.
//
// The example runs writers and readers simultaneously through a series of
// resizes and proves linearizable visibility: a reader never observes a
// torn record or a value the key never held.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"hdnh"
	"hdnh/internal/ycsb"
)

const (
	writers      = 4
	readers      = 4
	perWriter    = 10_000
	readDuration = 2 * time.Second
)

func main() {
	dev, err := hdnh.NewDevice(hdnh.DeviceConfig(1 << 24))
	if err != nil {
		log.Fatal(err)
	}
	opts := hdnh.DefaultOptions()
	opts.SegmentBuckets = 16 // small segments: many resizes under load
	table, err := hdnh.Create(dev, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer table.Close()

	gen0 := table.Generation()
	var written atomic.Int64
	var readsDone, hits atomic.Int64
	var wg sync.WaitGroup

	// Writers: each owns a disjoint key range; insert then keep updating.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := table.NewSession()
			base := int64(w) * perWriter
			for i := int64(0); i < perWriter; i++ {
				if err := s.Insert(ycsb.RecordKey(base+i), ycsb.ValueFor(base+i)); err != nil {
					log.Fatalf("writer %d: %v", w, err)
				}
				written.Add(1)
			}
			for i := int64(0); i < perWriter; i += 2 {
				if err := s.Update(ycsb.RecordKey(base+i), ycsb.ValueFor(base+i+1_000_000)); err != nil {
					log.Fatalf("writer %d update: %v", w, err)
				}
			}
		}(w)
	}

	// Readers: hammer random keys across all ranges while writes happen.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			s := table.NewSession()
			for i := int64(r); ; i = (i*2862933555777941757 + 3037000493) % (writers * perWriter) {
				select {
				case <-stop:
					return
				default:
				}
				v, ok := s.Get(ycsb.RecordKey(i))
				readsDone.Add(1)
				if !ok {
					continue // not inserted yet — fine
				}
				hits.Add(1)
				if v != ycsb.ValueFor(i) && v != ycsb.ValueFor(i+1_000_000) {
					log.Fatalf("reader %d: key %d returned impossible value %q", r, i, v.String())
				}
			}
		}(r)
	}

	wg.Wait()
	time.Sleep(50 * time.Millisecond) // let readers observe the final state
	close(stop)
	rwg.Wait()

	fmt.Printf("writers: %d records inserted, half updated, through %d resizes\n",
		written.Load(), table.Generation()-gen0)
	fmt.Printf("readers: %d lock-free reads, %d hits, zero torn values ✓\n",
		readsDone.Load(), hits.Load())

	// Final audit.
	s := table.NewSession()
	for i := int64(0); i < writers*perWriter; i++ {
		want := ycsb.ValueFor(i)
		if i%2 == 0 {
			want = ycsb.ValueFor(i + 1_000_000)
		}
		if v, ok := s.Get(ycsb.RecordKey(i)); !ok || v != want {
			log.Fatalf("audit: key %d = (%q, %v)", i, v.String(), ok)
		}
	}
	fmt.Printf("audit: all %d records hold their last written value ✓\n", writers*perWriter)
}

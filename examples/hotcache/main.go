// Hotcache: the scenario the paper's introduction motivates — a skewed
// read workload (Alibaba-style: most accesses touch 1% of the items) where
// the DRAM hot table absorbs the hot set and spares NVM bandwidth.
//
// The example loads a dataset, replays a zipfian read stream at two skew
// levels, and reports what fraction of reads the hot table served (visible
// as the drop in NVM reads per operation). It also contrasts RAFL with the
// LRU replacement strategy the paper argues against.
package main

import (
	"fmt"
	"log"

	"hdnh"
	"hdnh/internal/core"
	"hdnh/internal/rng"
	"hdnh/internal/ycsb"
)

const records = 50_000
const reads = 200_000

func main() {
	fmt.Printf("dataset: %d records, %d zipfian reads\n\n", records, reads)
	for _, replacer := range []hdnh.Replacer{hdnh.RAFL, hdnh.LRU} {
		for _, skew := range []float64{0.5, 0.99, 1.22} {
			nvmReads, hitRate := run(replacer, skew)
			fmt.Printf("replacer=%-4s skew=%.2f: hot-table hit rate %5.1f%%, NVM reads/op %.3f\n",
				replacer, skew, hitRate*100, nvmReads)
		}
		fmt.Println()
	}
	fmt.Println("expected shape: hit rate and NVM savings grow with skew;")
	fmt.Println("RAFL keeps up with LRU without any list maintenance on hits.")
}

func run(replacer hdnh.Replacer, theta float64) (nvmReadsPerOp, hitRate float64) {
	dev, err := hdnh.NewDevice(hdnh.DeviceConfig(1 << 23))
	if err != nil {
		log.Fatal(err)
	}
	opts := hdnh.DefaultOptions()
	opts.Replacer = replacer
	// Size the table so the preload does not resize mid-way.
	opts.InitBottomSegments = records / (3 * opts.SegmentBuckets * core.SlotsPerBucket / 2)
	table, err := hdnh.Create(dev, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer table.Close()

	s := table.NewSession()
	for i := int64(0); i < records; i++ {
		if err := s.Insert(ycsb.RecordKey(i), ycsb.ValueFor(i)); err != nil {
			log.Fatal(err)
		}
	}

	zipf, err := ycsb.NewZipf(records, theta)
	if err != nil {
		log.Fatal(err)
	}
	r := rng.New(7)
	before := s.NVMStats()
	misses := 0
	for i := 0; i < reads; i++ {
		idx := zipf.Sample(r)
		readsBefore := s.NVMStats().ReadAccesses
		if _, ok := s.Get(ycsb.RecordKey(idx)); !ok {
			log.Fatalf("record %d missing", idx)
		}
		if s.NVMStats().ReadAccesses != readsBefore {
			misses++ // this Get had to leave DRAM
		}
	}
	delta := s.NVMStats().Sub(before)
	return float64(delta.ReadAccesses) / reads, 1 - float64(misses)/reads
}
